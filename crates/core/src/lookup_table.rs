//! The default-transition lookup table (§III.B of the paper).
//!
//! The table has one row per input character value `c` (256 rows). Each row
//! holds up to three kinds of **default transition pointers** (DTPs),
//! consulted only when the current state stores no pointer for `c`:
//!
//! - **depth-1** — the unique state whose path is the single byte `c`, or
//!   the start state if no pattern begins with `c`. At most 256 of these
//!   exist, so all are covered (1 bit of compare information per row).
//! - **depth-2** — up to `k2` (paper: 4) states whose path is `(y, c)`,
//!   chosen as the most commonly pointed to in the full DFA. The row stores
//!   each entry's *preceding byte* `y` (8 bits) for comparison against the
//!   previous input character.
//! - **depth-3** — up to `k3` (paper: 1) states whose path is `(x, y, c)`,
//!   again by popularity. The row stores the two preceding bytes (16 bits)
//!   for comparison against the previous two input characters.
//!
//! Resolution priority is depth-3, then depth-2, then depth-1 — i.e.
//! deepest match first, mirroring the DFA's longest-suffix semantics.

use dpi_automaton::{Dfa, StateId};

/// Configuration of the default-transition scheme.
///
/// The paper's hardware uses `{depth1: true, k2: 4, k3: 1}`; other values
/// exist to reproduce the intermediate rows of Figure 2 / Table II and the
/// "4 was the optimum value" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtpConfig {
    /// Install the depth-1 defaults (all 256 of them).
    pub depth1: bool,
    /// Number of depth-2 default pointers per character value.
    pub k2: usize,
    /// Number of depth-3 default pointers per character value.
    pub k3: usize,
}

impl DtpConfig {
    /// The paper's configuration: depth-1 + 4 depth-2 + 1 depth-3 defaults.
    pub const PAPER: DtpConfig = DtpConfig {
        depth1: true,
        k2: 4,
        k3: 1,
    };

    /// Depth-1 defaults only (Figure 2(A)).
    pub const D1: DtpConfig = DtpConfig {
        depth1: true,
        k2: 0,
        k3: 0,
    };

    /// Depth-1 and depth-2 defaults (Figure 2(B)).
    pub const D1_D2: DtpConfig = DtpConfig {
        depth1: true,
        k2: 4,
        k3: 0,
    };

    /// No defaults at all: the reduced automaton degenerates to "store every
    /// non-start pointer", i.e. the original algorithm's storage.
    pub const NONE: DtpConfig = DtpConfig {
        depth1: false,
        k2: 0,
        k3: 0,
    };
}

impl Default for DtpConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// A depth-2 default entry in a row: compare byte + target state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Depth2Entry {
    /// Byte of the target's *preceding* state (the `y` in path `(y, c)`),
    /// compared against the previous input character.
    pub prev: u8,
    /// The depth-2 target state.
    pub target: StateId,
    /// How many full-DFA transitions this entry absorbs (its in-degree) —
    /// the popularity that earned it the slot.
    pub popularity: usize,
}

/// A depth-3 default entry in a row: two compare bytes + target state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Depth3Entry {
    /// The two preceding path bytes (the `(x, y)` in path `(x, y, c)`),
    /// compared against the previous two input characters.
    pub prev2: [u8; 2],
    /// The depth-3 target state.
    pub target: StateId,
    /// In-degree popularity that earned the slot.
    pub popularity: usize,
}

/// One row of the lookup table (all defaults for one input character value).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LutRow {
    /// Depth-1 default: the state with path `[c]`, if any. `None` encodes
    /// "fall through to the start state" (the row's 1-bit flag is clear).
    pub depth1: Option<StateId>,
    /// Depth-2 defaults, at most `k2`, distinct `prev` bytes.
    pub depth2: Vec<Depth2Entry>,
    /// Depth-3 defaults, at most `k3`, distinct `prev2` byte pairs.
    pub depth3: Vec<Depth3Entry>,
}

impl LutRow {
    /// Number of default pointers actually stored in this row.
    pub fn entry_count(&self) -> usize {
        usize::from(self.depth1.is_some()) + self.depth2.len() + self.depth3.len()
    }
}

/// The complete 256-row default-transition lookup table.
#[derive(Debug, Clone)]
pub struct DefaultLut {
    rows: Vec<LutRow>,
    config: DtpConfig,
}

impl DefaultLut {
    /// Builds the lookup table for `dfa` under `config`.
    ///
    /// Depth-2/3 entries are selected by **popularity**: for each character
    /// value `c`, every depth-2 (resp. depth-3) state reachable on `c` is
    /// ranked by its in-degree in the full DFA, and the top `k2` (resp.
    /// `k3`) are installed. In-degree is the exact number of stored pointers
    /// the entry eliminates (see `reduce`), so this greedy choice is optimal
    /// per slot.
    pub fn build(dfa: &Dfa, config: DtpConfig) -> DefaultLut {
        // In-degree of every state, over all (state, byte) transitions.
        let mut indegree = vec![0usize; dfa.len()];
        for s in dfa.states() {
            for &t in dfa.row(s) {
                if t != 0 {
                    indegree[t as usize] += 1;
                }
            }
        }

        let mut rows: Vec<LutRow> = (0..256).map(|_| LutRow::default()).collect();

        // Depth-1: at most one state per byte value; cover them all.
        // Depth-2/3 candidates, bucketed by the last byte of their path.
        let mut d2_cands: Vec<Vec<Depth2Entry>> = vec![Vec::new(); 256];
        let mut d3_cands: Vec<Vec<Depth3Entry>> = vec![Vec::new(); 256];
        for s in dfa.states() {
            match dfa.depth(s) {
                1 if config.depth1 => {
                    let c = dfa.last_byte(s).expect("depth-1 state has last byte");
                    debug_assert!(rows[c as usize].depth1.is_none());
                    rows[c as usize].depth1 = Some(s);
                }
                2 if config.k2 > 0 => {
                    let [y, c] = dfa.last_two_bytes(s).expect("depth-2 has two bytes");
                    d2_cands[c as usize].push(Depth2Entry {
                        prev: y,
                        target: s,
                        popularity: indegree[s.index()],
                    });
                }
                3 if config.k3 > 0 => {
                    let [y, c] = dfa.last_two_bytes(s).expect("depth-3 has two bytes");
                    // Path is (x, y, c); the parent's last-two pair is (x, y).
                    let [x, _] = dfa
                        .last_two_bytes(dfa.parent(s))
                        .expect("depth-2 parent has two bytes");
                    d3_cands[c as usize].push(Depth3Entry {
                        prev2: [x, y],
                        target: s,
                        popularity: indegree[s.index()],
                    });
                }
                _ => {}
            }
        }

        for c in 0..256usize {
            let mut d2 = std::mem::take(&mut d2_cands[c]);
            d2.sort_by(|a, b| {
                b.popularity
                    .cmp(&a.popularity)
                    .then(a.target.cmp(&b.target))
            });
            d2.truncate(config.k2);
            d2.retain(|e| e.popularity > 0);
            rows[c].depth2 = d2;

            let mut d3 = std::mem::take(&mut d3_cands[c]);
            d3.sort_by(|a, b| {
                b.popularity
                    .cmp(&a.popularity)
                    .then(a.target.cmp(&b.target))
            });
            d3.truncate(config.k3);
            d3.retain(|e| e.popularity > 0);
            rows[c].depth3 = d3;
        }

        DefaultLut { rows, config }
    }

    /// The configuration the table was built with.
    pub fn config(&self) -> DtpConfig {
        self.config
    }

    /// Row for input byte `c`.
    #[inline]
    pub fn row(&self, c: u8) -> &LutRow {
        &self.rows[c as usize]
    }

    /// Iterates over `(byte, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &LutRow)> {
        self.rows.iter().enumerate().map(|(c, r)| (c as u8, r))
    }

    /// Total number of default pointers stored, per depth: `(d1, d2, d3)`.
    /// Table II reports the running sums `d1`, `d1+d2`, `d1+d2+d3`.
    pub fn entry_counts(&self) -> (usize, usize, usize) {
        let mut d1 = 0;
        let mut d2 = 0;
        let mut d3 = 0;
        for r in &self.rows {
            d1 += usize::from(r.depth1.is_some());
            d2 += r.depth2.len();
            d3 += r.depth3.len();
        }
        (d1, d2, d3)
    }

    /// Resolves the default transition for input byte `c` given the observed
    /// input history: `prev` is the previous input byte (if at least one
    /// byte of this packet was already consumed) and `prev2` the one before
    /// it (if at least two were). Priority: depth-3, depth-2, depth-1,
    /// start state.
    ///
    /// This is the *runtime* resolution used by software matchers and the
    /// hardware engine. Its agreement with the full DFA rests on the
    /// longest-suffix invariant (DESIGN.md §5) and is checked exhaustively
    /// by `ReducedAutomaton::verify_against`.
    #[inline]
    pub fn resolve(&self, c: u8, prev: Option<u8>, prev2: Option<u8>) -> StateId {
        let row = &self.rows[c as usize];
        if let (Some(p), Some(pp)) = (prev, prev2) {
            for e in &row.depth3 {
                if e.prev2 == [pp, p] {
                    return e.target;
                }
            }
        }
        if let Some(p) = prev {
            for e in &row.depth2 {
                if e.prev == p {
                    return e.target;
                }
            }
        }
        row.depth1.unwrap_or(StateId::START)
    }

    /// Resolves the default transition a state would take on byte `c`,
    /// using the state's **own path suffix** as the history. This is the
    /// *build-time* resolution used to decide which pointers may be omitted.
    pub fn resolve_for_state(&self, dfa: &Dfa, state: StateId, c: u8) -> StateId {
        let (prev, prev2) = match dfa.depth(state) {
            0 => (None, None),
            1 => (dfa.last_byte(state), None),
            _ => {
                let [a, b] = dfa.last_two_bytes(state).expect("depth >= 2");
                (Some(b), Some(a))
            }
        };
        self.resolve(c, prev, prev2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::PatternSet;

    fn figure1_dfa() -> Dfa {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        Dfa::build(&set)
    }

    #[test]
    fn depth1_rows_cover_exactly_start_bytes() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        let with_d1: Vec<u8> = lut
            .iter()
            .filter(|(_, r)| r.depth1.is_some())
            .map(|(c, _)| c)
            .collect();
        assert_eq!(with_d1, vec![b'h', b's']);
        let (d1, _, _) = lut.entry_counts();
        assert_eq!(d1, 2);
    }

    #[test]
    fn depth2_entries_store_preceding_byte() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // Depth-2 states: he (prev h on e), hi (prev h on i), sh (prev s on h).
        let row_e = lut.row(b'e');
        assert_eq!(row_e.depth2.len(), 1);
        assert_eq!(row_e.depth2[0].prev, b'h');
        let row_h = lut.row(b'h');
        assert_eq!(row_h.depth2.len(), 1);
        assert_eq!(row_h.depth2[0].prev, b's');
        let row_i = lut.row(b'i');
        assert_eq!(row_i.depth2.len(), 1);
        assert_eq!(row_i.depth2[0].prev, b'h');
    }

    #[test]
    fn depth3_entries_store_two_preceding_bytes() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // Depth-3 states: she (sh + e), her (he + r), his (hi + s).
        let row_r = lut.row(b'r');
        assert_eq!(row_r.depth3.len(), 1);
        assert_eq!(row_r.depth3[0].prev2, [b'h', b'e']);
        let row_s = lut.row(b's');
        assert_eq!(row_s.depth3.len(), 1);
        assert_eq!(row_s.depth3[0].prev2, [b'h', b'i']);
        // Row 'e' hosts both a depth-2 (he) and a depth-3 (she) default.
        let row_e = lut.row(b'e');
        assert_eq!(row_e.depth3.len(), 1);
        assert_eq!(row_e.depth3[0].prev2, [b's', b'h']);
    }

    #[test]
    fn figure2_running_entry_counts() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        let (d1, d2, d3) = lut.entry_counts();
        assert_eq!((d1, d2, d3), (2, 3, 3));
    }

    #[test]
    fn popularity_ranks_by_indegree() {
        // Patterns sharing last byte 'x' at depth 2 with different in-degrees.
        // "ax" gets extra in-degree because "zax..."-style transitions point
        // to it from more states when 'a' is a common predecessor.
        let set = PatternSet::new(["axq", "bxq", "aaxq"]).unwrap();
        let dfa = Dfa::build(&set);
        let lut = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 1, k3: 0 });
        let row = lut.row(b'x');
        assert_eq!(row.depth2.len(), 1);
        // Both ax and bx exist; the winner must have >= popularity of loser.
        let all = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 4, k3: 0 });
        let entries = &all.row(b'x').depth2;
        assert!(entries.len() >= 2);
        assert!(entries[0].popularity >= entries[1].popularity);
        assert_eq!(row.depth2[0].target, entries[0].target);
    }

    #[test]
    fn k_limits_are_respected() {
        let strings: Vec<String> = (b'a'..=b'z').map(|c| format!("{}z", c as char)).collect();
        let set = PatternSet::new(&strings).unwrap();
        let dfa = Dfa::build(&set);
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // 26 depth-2 states all end in 'z'; only k2 = 4 get slots.
        assert_eq!(lut.row(b'z').depth2.len(), 4);
        let lut8 = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 8, k3: 1 });
        assert_eq!(lut8.row(b'z').depth2.len(), 8);
    }

    #[test]
    fn resolve_priority_d3_over_d2_over_d1() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // byte 'e' with history (s, h) → she (depth 3).
        let she = lut.resolve(b'e', Some(b'h'), Some(b's'));
        assert_eq!(dfa.depth(she), 3);
        // byte 'e' with history (?, h) → he (depth 2).
        let he = lut.resolve(b'e', Some(b'h'), Some(b'q'));
        assert_eq!(dfa.depth(he), 2);
        // byte 'e' with unrelated history → start (no depth-1 'e' state).
        assert_eq!(lut.resolve(b'e', Some(b'q'), Some(b'q')), StateId::START);
        // byte 'h' with no history → depth-1 h.
        let h = lut.resolve(b'h', None, None);
        assert_eq!(dfa.depth(h), 1);
    }

    #[test]
    fn masked_history_cannot_fire_deep_defaults() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // First byte of a packet: no history → depth-1 or start only.
        let t = lut.resolve(b'e', None, None);
        assert_eq!(t, StateId::START);
        // Second byte: prev available, prev2 masked → depth-2 allowed,
        // depth-3 not.
        let t = lut.resolve(b'e', Some(b'h'), None);
        assert_eq!(dfa.depth(t), 2);
    }

    #[test]
    fn build_time_resolution_uses_path_suffix() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::PAPER);
        // State "sh" reading 'e': its suffix is (s, h) → she.
        let s = dfa.step(StateId::START, b's');
        let sh = dfa.step(s, b'h');
        let she = lut.resolve_for_state(&dfa, sh, b'e');
        assert_eq!(dfa.depth(she), 3);
        assert_eq!(she, dfa.step(sh, b'e'));
    }

    #[test]
    fn none_config_empties_table() {
        let dfa = figure1_dfa();
        let lut = DefaultLut::build(&dfa, DtpConfig::NONE);
        assert_eq!(lut.entry_counts(), (0, 0, 0));
        assert_eq!(lut.resolve(b'h', None, None), StateId::START);
    }
}
