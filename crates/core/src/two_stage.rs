//! Two-stage scanning: an L2-resident approximate pre-classifier in
//! front of the exact engine, so clean traffic never touches the big
//! automaton.
//!
//! Every exact engine in this workspace walks an automaton whose size —
//! and therefore cache behaviour — grows with the ruleset; at the
//! 25k–100k rules real IDS deployments carry, even the sharded layout
//! pays tens of shard walks per byte. [`TwoStageMatcher`] restores the
//! small-automaton scan rate by splitting the work:
//!
//! 1. **Pre-classify.** A small sound cover of the ruleset
//!    ([`dpi_automaton::PrefixCover`]: a budget-truncated prefix
//!    automaton, or the Bouma2-style [`dpi_automaton::GramCover`] 2-gram
//!    atom table — the builder keeps the cheaper sound one) sweeps every
//!    byte. Its scan tables are built under a per-core L2 budget, so
//!    this stage runs at cache-resident speed however many rules the
//!    exact stage carries.
//! 2. **Verify.** A flag from an incompletely-covered truncation names
//!    its candidate set exactly: the patterns sharing that prefix. Small
//!    families (at most `CONFIRM_MAX_FAMILY` = 8 candidates) are settled *in place* by
//!    comparing each candidate's folded residual against the bytes
//!    after the flag — no automaton replay, no lookback (a truncation
//!    is a prefix, so everything left to check is forward). Only flags
//!    whose family is too large open *windows* — widened backward by
//!    the cover's uniform lookback and forward by the longest pattern
//!    the flag may witness, overlapping windows merged — that replay
//!    through the exact [`ShardedMatcher`]. The verifier resumes its
//!    [`ShardedScanState`] (and any in-flight residual comparison)
//!    across window and chunk boundaries, so flows can suspend
//!    mid-window and replay feeds every byte at most once.
//!
//! **Complete truncations are exact matches.** When the prefix cover
//! keeps a pattern whole (its truncation *is* the pattern — always the
//! case for the 1–3-byte content strings realistic rulesets carry by
//! the thousand, and for any pattern the budget covers in full), a
//! stage-1 flag from it is not an approximation: it is the occurrence.
//! Those flags emit directly and never open windows; only truncations
//! with longer continuations (`forward > 0`) confirm or window. The
//! replay verifier therefore holds just the big-family patterns, and
//! the scan is one fused pass — one compiled-automaton walk with the
//! same anchor skip lane and pair rows as the monolithic engine,
//! recording flags that are then processed in stream order against a
//! single-byte direct-emit sweep of the gaps between them (vectorized
//! 32 bytes per probe under the `simd` feature).
//!
//! Soundness is inherited from the cover (see
//! [`dpi_automaton::Flag::window`]): every exact occurrence of an
//! incompletely-covered pattern lies inside some flagged window, windows
//! replay whole through the exact engine, and bytes outside every window
//! cannot contain such an occurrence — so the two-stage scan reports
//! **exactly** the single-stage matches, in canonical `(end, pattern)`
//! order, pinned across chunkings by `tests/two_stage.rs`.
//!
//! # Quick example
//!
//! ```
//! use dpi_automaton::PatternSet;
//! use dpi_core::{TwoStageConfig, TwoStageMatcher};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let matcher = TwoStageMatcher::build(&set, &TwoStageConfig::with_cores(1))?;
//! let mut scratch = matcher.scratch();
//! let mut out = Vec::new();
//! let stats = matcher.scan_into(b"ushers", &mut scratch, &mut out);
//! assert_eq!(out.len(), 3); // she, he, hers — identical to single-stage
//! assert!(stats.verified_bytes <= 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::VecDeque;

use dpi_automaton::{
    AnchorSet, ApproxConfig, ApproxState, Dfa, GramCover, Match, PairTable, PatternId, PatternSet,
    PreClassifier, PrefixCover, ScanState, ShardPlanError,
};

use crate::compiled::{CompiledAutomaton, CompiledMatcher};
use crate::reduce::ReducedAutomaton;
use crate::sharded::{ShardedConfig, ShardedMatcher, ShardedScanState, ShardedScratch};

/// Build-time configuration of a [`TwoStageMatcher`]: the pre-classifier
/// budget plus the exact stage's full [`ShardedConfig`].
#[derive(Debug, Clone, Copy)]
pub struct TwoStageConfig {
    /// Pre-classifier (stage 1) build knobs, chiefly the per-core L2
    /// byte budget its scan tables must fit.
    pub approx: ApproxConfig,
    /// Exact verifier (stage 2) configuration; also supplies the DTP
    /// and anchor settings the compiled pre-classifier reuses.
    pub exact: ShardedConfig,
}

impl TwoStageConfig {
    /// Defaults for an `cores`-core deployment: default approximate
    /// budget, [`ShardedConfig::with_cores`] for the verifier.
    pub fn with_cores(cores: usize) -> TwoStageConfig {
        TwoStageConfig {
            approx: ApproxConfig::default(),
            exact: ShardedConfig::with_cores(cores),
        }
    }
}

/// Per-cover-pattern flag dispatch, indexed by the cover's
/// [`PatternId`]: which source pattern (if any) this flag *is* an exact
/// occurrence of, and whether longer continuations make it open a
/// verification window.
struct FlagMeta {
    /// Source pattern id this truncation matches completely, or
    /// `u32::MAX`. At most one — patterns are unique.
    exact: u32,
    /// Longest residual of any source pattern sharing this truncation.
    forward: u32,
    /// The flag may witness a longer pattern whose family is too large
    /// for direct confirmation and must open (or extend) a replay
    /// window.
    windowed: bool,
    /// Verifier shards owning this truncation's oversized family (bit
    /// `i` = shard `i`, [`crate::sharded::lane_in_mask`] convention):
    /// the window a flag opens replays only through these lanes, so an
    /// infected burst pays one small automaton per window instead of
    /// every shard. `u64::MAX` (all lanes) until the builder patches
    /// windowed entries with the real ownership masks.
    mask: u64,
}

/// Largest truncation family confirmed by direct residual comparison;
/// bigger families open replay windows through the exact engine
/// instead. Eight bounds the per-flag confirm work at a handful of
/// (almost always first-byte-failing) compares while real covers stay
/// entirely on the confirm path — at 100k synthesized rules the mean
/// family is ~1.3 patterns.
const CONFIRM_MAX_FAMILY: usize = 8;

/// Direct verification of windowed flags whose truncation is shared by
/// at most [`CONFIRM_MAX_FAMILY`] incompletely-covered patterns: the
/// flag names the truncation, so the only candidates are that family,
/// and each is confirmed by comparing its folded residual against the
/// bytes following the flag — no automaton replay, no lookback (a
/// truncation is a prefix; everything left to check is forward).
/// Indexed like `meta`, by kept cover pattern.
struct ConfirmTable {
    /// Kept cover pattern → `entries[off[i]..off[i + 1]]`.
    off: Vec<u32>,
    entries: Vec<ConfirmEntry>,
    /// Concatenated folded residuals.
    blob: Vec<u8>,
    /// Source set's byte folding, applied to stream bytes before
    /// comparison against the (pre-folded) blob.
    fold: Box<[u8; 256]>,
}

/// One candidate pattern of a confirmable truncation family.
struct ConfirmEntry {
    /// Source pattern id emitted when the residual matches.
    pid: u32,
    /// Residual bytes: `blob[start..start + len]`. Always ≥ 1 —
    /// complete covers are handled by [`FlagMeta::exact`].
    start: u32,
    len: u32,
}

/// An in-flight residual comparison that ran out of chunk: resumes
/// against the next chunk's first bytes.
#[derive(Debug, Clone)]
struct ConfirmCarry {
    /// Index into [`ConfirmTable::entries`].
    entry: u32,
    /// Residual bytes already matched.
    matched: u32,
    /// Stream-absolute end the match will have if it completes.
    end: u64,
}

/// SIMD acceleration for the singles sweep: nibble-shuffle tables
/// answering "is this byte a 1-byte rule hit?" for 32 lanes per probe,
/// plus the detected CPU token. The sweep visits every stream byte the
/// automaton walk skipped, so at realistic hit densities (~8% of bytes
/// on the synthesized 100k set) replacing the per-byte table load with
/// one probe per 32 bytes + a bit-iteration over members removes most
/// of the second full pass. A stub that always declines without the
/// `simd` feature or on CPUs without SSSE3.
#[derive(Debug, Clone)]
struct SinglesSimd {
    #[cfg(feature = "simd")]
    inner: Option<(dpi_automaton::simd::ByteSetTables, dpi_automaton::simd::SimdToken)>,
}

impl SinglesSimd {
    /// Builds the byte-set tables for `{b : table[b] != u32::MAX}` when
    /// the feature is on, the CPU qualifies, and the set is non-empty.
    fn build(table: &[u32; 256]) -> SinglesSimd {
        #[cfg(feature = "simd")]
        {
            use dpi_automaton::simd::{ByteSetTables, SimdToken};
            let inner = (table.iter().any(|&id| id != u32::MAX))
                .then(SimdToken::detect)
                .flatten()
                .map(|tok| {
                    (
                        ByteSetTables::build(|b| table[usize::from(b)] != u32::MAX),
                        tok,
                    )
                });
            SinglesSimd { inner }
        }
        #[cfg(not(feature = "simd"))]
        {
            let _ = table;
            SinglesSimd {}
        }
    }
}

/// The deployed stage-1 classifier.
enum PreStage {
    /// Budget-truncated prefix automaton, compiled through the same
    /// reduce/anchor/pair pipeline as the exact engine — stage 1 keeps
    /// the skip lane and all its clean-traffic speed.
    ///
    /// Complete **single-byte** cover patterns that never open windows
    /// live in `singles` (raw byte → source pattern id) instead of the
    /// automaton: realistic rulesets carry enough 1-byte content
    /// strings to hit a third of stream bytes, and each such hit would
    /// knock the compiled walk off its skip lane. A dense table emits
    /// them branch-poor in the same fused pass, and evicting them from
    /// the automaton restores the anchor lane's skip runs for the
    /// remaining (far sparser) cover. `automaton` is `None` in the
    /// degenerate case where the table holds the entire cover.
    Prefix {
        automaton: Option<Box<(CompiledAutomaton, PatternSet)>>,
        meta: Vec<FlagMeta>,
        singles: Box<[u32; 256]>,
        simd: SinglesSimd,
        confirm: ConfirmTable,
    },
    /// Bouma2-style 2-gram atom table, scanned as-is. Patterns of
    /// length ≤ 3 are matched by the exact [`ShortLane`] tables instead
    /// (a 2-gram flag cannot be an exact occurrence witness).
    Grams(Box<GramCover>),
}

/// Exact matching tables for patterns of length ≤ 3 on the gram-cover
/// path: folded-byte → pattern id (sentinel `u32::MAX`), folded-pair →
/// pattern id, and an open-addressed hash over packed folded triples.
/// The pair table (256 KiB) and triple table are only allocated when
/// patterns of that length exist.
struct ShortLane {
    fold: [u8; 256],
    singles: Box<[u32]>,
    pairs: Option<Box<[u32]>>,
    triples: Option<TripleTable>,
}

impl ShortLane {
    fn memory_bytes(&self) -> usize {
        256 + self.singles.len() * 4
            + self.pairs.as_ref().map_or(0, |p| p.len() * 4)
            + self.triples.as_ref().map_or(0, |t| t.slots.len() * 8)
    }
}

/// Linear-probed hash table keyed by a 24-bit packed folded triple; each
/// slot is `key << 32 | pattern_id` (`u64::MAX` empty). Sized at 2×
/// occupancy, so lookups terminate in one or two probes.
struct TripleTable {
    slots: Box<[u64]>,
    mask: usize,
}

impl TripleTable {
    fn build(entries: &[(u32, u32)]) -> TripleTable {
        let size = (entries.len() * 2).next_power_of_two().max(16);
        let mask = size - 1;
        let mut slots = vec![u64::MAX; size].into_boxed_slice();
        for &(key, id) in entries {
            let mut at = Self::hash(key) & mask;
            while slots[at] != u64::MAX {
                at = (at + 1) & mask;
            }
            slots[at] = u64::from(key) << 32 | u64::from(id);
        }
        TripleTable { slots, mask }
    }

    #[inline]
    fn hash(key: u32) -> usize {
        (key.wrapping_mul(0x9E37_79B1) >> 16) as usize
    }

    #[inline]
    fn get(&self, key: u32) -> Option<u32> {
        let mut at = Self::hash(key) & self.mask;
        loop {
            let slot = self.slots[at];
            if slot == u64::MAX {
                return None;
            }
            if (slot >> 32) as u32 == key {
                return Some(slot as u32);
            }
            at = (at + 1) & self.mask;
        }
    }
}

/// Counters of one flow's (or one scan's) two-stage progress.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoStageStats {
    /// Bytes swept by the pre-classifier (every stream byte).
    pub pre_bytes: u64,
    /// Stage-1 flags raised (exact-occurrence flags included).
    pub flags: u64,
    /// Merged windows replayed through the exact engine.
    pub windows: u64,
    /// Windows that produced no exact match — stage 1's false
    /// positives.
    pub fp_windows: u64,
    /// Bytes replayed through the exact engine. Each stream byte counts
    /// at most once per *lane set*: masked window replay feeds only the
    /// shards owning the flagged family, and a lane joining a window
    /// late re-reads the gap bytes the group already covered — those
    /// catch-up bytes count once per joining lane.
    pub verified_bytes: u64,
    /// Window-opening flags recorded but **not** verified — only the
    /// degraded flag-only scan path
    /// ([`TwoStageMatcher::scan_chunk_flag_only`]) increments this;
    /// every full-fidelity scan keeps it 0.
    pub suspect_flags: u64,
}

impl TwoStageStats {
    /// Fraction of swept bytes that replayed through the exact engine.
    pub fn replay_fraction(&self) -> f64 {
        if self.pre_bytes == 0 {
            0.0
        } else {
            self.verified_bytes as f64 / self.pre_bytes as f64
        }
    }

    /// Fraction of windows with no exact match (1.0 on clean traffic by
    /// construction — every window there is a false positive).
    pub fn fp_window_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.fp_windows as f64 / self.windows as f64
        }
    }
}

/// Appends `m`, then restores canonical `(end, pattern)` order by
/// bubbling it back past any later-ordered tail entries. The common case
/// is a single comparison; inversions only arise where exact-complete
/// flags interleave with verifier feeds a few bytes behind them.
#[inline]
fn push_canonical(out: &mut Vec<Match>, m: Match) {
    let mut i = out.len();
    out.push(m);
    while i > 0 {
        let prev = out[i - 1];
        if (prev.end, prev.pattern.index()) <= (m.end, m.pattern.index()) {
            break;
        }
        out.swap(i - 1, i);
        i -= 1;
    }
}

/// Everything the verifier side of a flow mutates: stage-2 registers,
/// the active window, the lookback ring and the pending-match queue.
/// Split from [`TwoStageState`] so the stage-1 scan (which borrows the
/// stage-1 registers) can drive it from inside its match callback.
#[derive(Debug, Clone)]
struct VerifySide {
    /// Exact-stage registers, advanced to `verified_until`.
    verify: ShardedScanState,
    /// Stream offset the verifier has consumed through.
    verified_until: u64,
    /// Exclusive end of the active merged window (`== verified_until`
    /// when no window is open past the frontier).
    window_end: u64,
    /// Largest flag end in the active merged window — the point past
    /// which the verifier may retire the window early once every shard
    /// automaton is back at rest.
    group_flag_end: u64,
    /// Last `min(max_back, pos)` stream bytes.
    ring: Vec<u8>,
    /// Exact-complete matches not yet emitted: a verifier feed may
    /// still produce matches ordered before them, so they wait until
    /// the verify frontier (or its lower bound) passes their end.
    pending: VecDeque<Match>,
    group_open: bool,
    group_had_match: bool,
    /// Lanes current at `verified_until`
    /// ([`crate::sharded::lane_in_mask`] convention): feeds advance only
    /// these, so a window replays through the shards owning its flagged
    /// families. Invariant: a lane in the mask has its cursor exactly at
    /// `verified_until`; any other lane's cursor is at or behind it
    /// (stale until [`VerifySide::join_lanes`] catches it up).
    group_mask: u64,
    stats: TwoStageStats,
}

/// Immutable per-scan context threaded into [`VerifySide`] methods: the
/// verifier, its id remap, the flag geometry, and the chunk being
/// scanned (with its stream-absolute start offset).
struct FeedCtx<'a> {
    exact: &'a ShardedMatcher,
    long_ids: Option<&'a [PatternId]>,
    max_back: u64,
    chunk: &'a [u8],
    base: u64,
}

impl VerifySide {
    /// Emits an exact-complete occurrence witnessed by a stage-1 flag.
    ///
    /// Fast path: with no window open and nothing pending, the match is
    /// final and goes straight to `out`. Soundness of skipping the
    /// queue: any verifier match `m` is an occurrence of an
    /// *incompletely*-covered pattern, so its truncation has
    /// `forward > 0` — `m`'s own truncation flag is windowed and fires
    /// at `m.end − residual < m.end`, i.e. **before** this flag in
    /// stream order whenever `m.end ≤ end`. That earlier window either
    /// already fed past `m` (emitting it — windows replay whole before
    /// they close, and early retirement only stops once nothing is in
    /// flight) or is still open, which this condition excludes. Hence
    /// no verifier match ordered at or before `end` can appear after
    /// the direct push. Otherwise the match queues in canonical order
    /// until the frontier passes it.
    #[inline]
    fn emit_exact(&mut self, m: Match, out: &mut Vec<Match>) {
        if !self.group_open && self.pending.is_empty() {
            push_canonical(out, m);
            return;
        }
        let mut i = self.pending.len();
        self.pending.push_back(m);
        while i > 0 {
            let prev = self.pending[i - 1];
            if (prev.end, prev.pattern.index()) <= (m.end, m.pattern.index()) {
                break;
            }
            self.pending.swap(i - 1, i);
            i -= 1;
        }
    }

    /// Sweeps the single-byte direct-emit table over chunk bytes
    /// `[*from, to)`, advancing `*from`. With nothing pending, no open
    /// window, and the region at or past the verify frontier, hits are
    /// final matches appended branch-poor straight into `out` (the
    /// dominant case — realistic rulesets make ~a third of stream
    /// bytes a 1-byte rule hit, so this loop must not branch-mispredict
    /// per hit). Otherwise each hit routes through [`Self::emit_exact`],
    /// which queues or bubbles as needed.
    fn sweep_singles(
        &mut self,
        table: &[u32; 256],
        simd: &SinglesSimd,
        ctx: &FeedCtx,
        from: &mut usize,
        to: usize,
        out: &mut Vec<Match>,
    ) {
        let (chunk, base) = (ctx.chunk, ctx.base);
        let start = *from;
        if to <= start {
            return;
        }
        *from = to;
        let abs = base as usize;
        if !self.group_open
            && self.pending.is_empty()
            && abs + start >= self.verified_until as usize
        {
            // Masked variant of the fast path: one shuffle probe
            // classifies 32 bytes, then only member lanes are touched.
            // Bits iterate ascending, so emission order is identical to
            // the scalar loop; membership is pinned to the table by
            // construction (and the vector kernels to the scalar model
            // by the `simd` conformance suite).
            #[cfg(feature = "simd")]
            if let Some((tables, tok)) = &simd.inner {
                let n0 = out.len();
                let bytes = &chunk[start..to];
                tok.dispatch(|| {
                    let mut j = 0;
                    while j + 32 <= bytes.len() {
                        let w: &[u8; 32] =
                            bytes[j..j + 32].try_into().expect("32-byte window");
                        let mut mask = tok.member_mask32(tables, w);
                        while mask != 0 {
                            let k = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            out.push(Match {
                                end: abs + start + j + k + 1,
                                pattern: PatternId(table[usize::from(bytes[j + k])]),
                            });
                        }
                        j += 32;
                    }
                    for (k, &b) in bytes[j..].iter().enumerate() {
                        let id = table[usize::from(b)];
                        if id != u32::MAX {
                            out.push(Match {
                                end: abs + start + j + k + 1,
                                pattern: PatternId(id),
                            });
                        }
                    }
                });
                self.stats.flags += (out.len() - n0) as u64;
                return;
            }
            #[cfg(not(feature = "simd"))]
            let _ = simd;
            let n0 = out.len();
            let mut n = n0;
            out.resize(
                n0 + (to - start),
                Match {
                    end: 0,
                    pattern: PatternId(u32::MAX),
                },
            );
            for (j, &b) in chunk[start..to].iter().enumerate() {
                let id = table[usize::from(b)];
                out[n] = Match {
                    end: abs + start + j + 1,
                    pattern: PatternId(id),
                };
                n += usize::from(id != u32::MAX);
            }
            out.truncate(n);
            self.stats.flags += (n - n0) as u64;
        } else {
            for (j, &b) in chunk[start..to].iter().enumerate() {
                let id = table[usize::from(b)];
                if id != u32::MAX {
                    self.stats.flags += 1;
                    self.emit_exact(
                        Match {
                            end: abs + start + j + 1,
                            pattern: PatternId(id),
                        },
                        out,
                    );
                }
            }
        }
    }

    /// Handles one window-opening flag: merge into the open group,
    /// or close it (replaying its tail) and open a new one. `mask`
    /// names the verifier lanes owning the flagged family — only those
    /// replay the window; lanes the group is not already feeding join
    /// via [`VerifySide::join_lanes`].
    fn on_window_flag(
        &mut self,
        ctx: &FeedCtx,
        end: u64,
        forward: u32,
        mask: u64,
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) {
        let ws = end.saturating_sub(ctx.max_back);
        let we = end + u64::from(forward);
        if self.group_open && ws <= self.window_end {
            self.window_end = self.window_end.max(we);
            self.group_flag_end = self.group_flag_end.max(end);
            self.join_lanes(ctx, mask, ws, scratch, out);
            return;
        }
        if self.group_open {
            // Gap: replay the closing window's tail (all of it is in
            // this chunk — `window_end < ws <= chunk_end`), then
            // account it.
            let target = self.window_end;
            self.feed(ctx, target, scratch, out);
            self.close_group();
        }
        if ws > self.verified_until {
            // The verifier skips the clean gap entirely; fresh-at
            // masking makes the jump boundary-local (matches need only
            // bytes inside the window, which all get fed). Pending
            // exact matches inside the gap are safe to emit: no future
            // verifier match can end at or before `ws`.
            self.flush_pending(ws, out);
            self.verify.reset_lanes_at(mask, ws);
            self.verified_until = ws;
            self.group_mask = mask;
        } else {
            // Contiguous with the frontier: keep the lanes already
            // there and bring this family's lanes up to it.
            self.join_lanes(ctx, mask, ws, scratch, out);
        }
        self.group_open = true;
        self.group_had_match = false;
        self.stats.windows += 1;
        self.window_end = we.max(self.verified_until);
        self.group_flag_end = end;
    }

    /// Brings lanes newly named by `mask` up to the verify frontier so
    /// subsequent feeds advance them with the group. A joining lane's
    /// own cursor `f` is its private frontier: it resumes at
    /// `max(f, anchor)` where `anchor = min(ws, verified_until)` —
    /// resetting (history-masking) only lanes strictly behind the
    /// anchor — and scans its gap alone through
    /// [`ShardedMatcher::scan_lane_chunk_into`].
    ///
    /// Soundness: any occurrence this lane owns ending at or before `f`
    /// was already emitted (so starting at ≥ `f` cannot duplicate it),
    /// and every reset point chosen while processing flags up to an
    /// occurrence's own flag lies at or before that occurrence's start
    /// (`ws' ≤ end' − max_back ≤ start`), so the lane's history is
    /// always contiguous-valid from a point early enough to witness the
    /// occurrences its joined windows cover. Catch-up matches end past
    /// every previous chunk's emissions (their own flags fire in this
    /// chunk), so appending stays canonical across calls;
    /// [`push_canonical`] repairs the rare within-call inversion.
    fn join_lanes(
        &mut self,
        ctx: &FeedCtx,
        mask: u64,
        ws: u64,
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) {
        let mut new = mask & !self.group_mask;
        if new == 0 {
            return;
        }
        self.group_mask |= new;
        let until = self.verified_until;
        let (chunk, base) = (ctx.chunk, ctx.base);
        scratch.verif.clear();
        let mut caught = 0u64;
        {
            let VerifySide { verify, ring, .. } = self;
            while new != 0 {
                let lane = new.trailing_zeros() as usize;
                new &= new - 1;
                if lane >= verify.shard_count() {
                    break;
                }
                let anchor = ws.min(until);
                let f = verify.lane_offset(lane);
                if f < anchor {
                    verify.reset_lane_at(lane, anchor);
                }
                let start = f.max(anchor);
                if start >= until {
                    continue;
                }
                caught += until - start;
                if start < base {
                    let ring_start = base - ring.len() as u64;
                    debug_assert!(start >= ring_start, "lookback ring too short");
                    let from = (start - ring_start) as usize;
                    let to = (until.min(base) - ring_start) as usize;
                    ctx.exact.scan_lane_chunk_into(
                        verify,
                        lane,
                        &ring[from..to],
                        &mut scratch.verif,
                    );
                }
                if until > base {
                    let from = (start.max(base) - base) as usize;
                    let to = (until - base) as usize;
                    ctx.exact.scan_lane_chunk_into(
                        verify,
                        lane,
                        &chunk[from..to],
                        &mut scratch.verif,
                    );
                }
            }
        }
        if caught == 0 {
            return;
        }
        self.stats.verified_bytes += caught;
        // Each lane appended its own canonical run; restore one order
        // (the remap below is monotone, so local order is global order).
        scratch.verif.sort_unstable_by_key(|m| (m.end, m.pattern.index()));
        if let Some(ids) = ctx.long_ids {
            for m in scratch.verif.iter_mut() {
                m.pattern = ids[m.pattern.index()];
            }
        }
        self.group_had_match |= !scratch.verif.is_empty();
        self.merge_due(until, &scratch.verif, out);
    }

    /// Feeds stream bytes `[self.verified_until, target)` to the exact
    /// stage in small blocks, serving the pre-`base` portion from the
    /// lookback ring, and merges the verifier's matches with due
    /// pending matches into `out` in canonical order.
    ///
    /// **Early retirement.** A flag's forward reach is the longest
    /// residual of any pattern sharing its truncation — often 100+
    /// bytes — but actually scanning that far is only necessary while an
    /// occurrence of the flagged family is in flight. Once the frontier
    /// is ≥ 2 bytes past the window's last flag and every shard
    /// automaton is back at its start state ([`ShardedScanState::at_rest`];
    /// the 2-byte margin covers the DTP history registers), the
    /// Aho-Corasick longest-suffix invariant says nothing is in flight:
    /// any match later in the window starts later and is covered by its
    /// own flag, whose window start is ≥ every frontier we stop at
    /// (window starts are monotone). So the feed stops, leaving
    /// `verified_until` short of `target` — the caller closes the group.
    fn feed(
        &mut self,
        ctx: &FeedCtx,
        target: u64,
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) {
        let (chunk, base) = (ctx.chunk, ctx.base);
        const FEED_BLOCK: u64 = 32;
        let start = self.verified_until;
        if target <= start {
            return;
        }
        scratch.verif.clear();
        let stop_after = self.group_flag_end.saturating_add(2);
        let mask = self.group_mask;
        let mut cur = start;
        {
            let VerifySide { verify, ring, .. } = self;
            while cur < target {
                let next = (cur + FEED_BLOCK).min(target);
                if cur < base {
                    let ring_start = base - ring.len() as u64;
                    debug_assert!(cur >= ring_start, "lookback ring too short");
                    let from = (cur - ring_start) as usize;
                    let to = (next.min(base) - ring_start) as usize;
                    ctx.exact.scan_chunk_masked_into(
                        verify,
                        &ring[from..to],
                        &mut scratch.sharded,
                        &mut scratch.verif,
                        mask,
                    );
                }
                if next > base {
                    let from = (cur.max(base) - base) as usize;
                    let to = (next - base) as usize;
                    ctx.exact.scan_chunk_masked_into(
                        verify,
                        &chunk[from..to],
                        &mut scratch.sharded,
                        &mut scratch.verif,
                        mask,
                    );
                }
                cur = next;
                if cur >= stop_after && cur < target && verify.at_rest_masked(mask) {
                    break;
                }
            }
        }
        if let Some(ids) = ctx.long_ids {
            for m in scratch.verif.iter_mut() {
                m.pattern = ids[m.pattern.index()];
            }
        }
        self.stats.verified_bytes += cur - start;
        self.verified_until = cur;
        self.group_had_match |= !scratch.verif.is_empty();
        self.merge_due(cur, &scratch.verif, out);
    }

    /// Merges verifier matches (a canonical run with ends at or before
    /// `upto`) with pending exact matches due by `upto` into `out` in
    /// canonical order.
    fn merge_due(&mut self, upto: u64, verif: &[Match], out: &mut Vec<Match>) {
        let mut vi = 0;
        loop {
            let take_pending = match (self.pending.front(), verif.get(vi)) {
                (Some(p), _) if p.end as u64 > upto => false,
                (Some(p), Some(v)) => (p.end, p.pattern.index()) <= (v.end, v.pattern.index()),
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_pending {
                let m = self.pending.pop_front().expect("checked front");
                push_canonical(out, m);
            } else if vi < verif.len() {
                push_canonical(out, verif[vi]);
                vi += 1;
            } else {
                break;
            }
        }
    }

    /// Emits pending exact matches ending at or before `upto` (callers
    /// guarantee no future verifier match can precede them).
    fn flush_pending(&mut self, upto: u64, out: &mut Vec<Match>) {
        while let Some(m) = self.pending.front() {
            if m.end as u64 > upto {
                break;
            }
            let m = *m;
            self.pending.pop_front();
            push_canonical(out, m);
        }
    }

    fn close_group(&mut self) {
        debug_assert!(self.group_open);
        if !self.group_had_match {
            self.stats.fp_windows += 1;
        }
        self.group_open = false;
        self.window_end = self.verified_until;
    }
}

/// Resumable per-flow state of a two-stage scan: stage-1 registers plus
/// the verifier side (stage-2 registers at the verify frontier, the
/// active window, and a `max_back`-byte lookback ring so a flag near a
/// chunk start can replay bytes from the previous chunk).
#[derive(Debug, Clone)]
pub struct TwoStageState {
    /// Stage-1 registers when the pre-classifier is compiled.
    pre_scan: ScanState,
    /// Stage-1 registers when the pre-classifier is the gram table.
    pre_gram: ApproxState,
    /// Last (up to 3) folded bytes, packed little-recent: the gram
    /// path's pair and triple lookups key off this rolling history.
    short_hist: u32,
    /// How many stream bytes `short_hist` holds (saturates at 3).
    short_have: u8,
    /// Stream bytes consumed.
    pos: u64,
    /// Residual comparisons cut off by a chunk boundary, resumed
    /// against the next chunk's first bytes. Practically always empty.
    carry: Vec<ConfirmCarry>,
    vs: VerifySide,
}

impl TwoStageState {
    /// Stream bytes this flow has consumed.
    pub fn offset(&self) -> u64 {
        self.pos
    }

    /// This flow's accumulated counters.
    pub fn stats(&self) -> TwoStageStats {
        self.vs.stats
    }
}

/// Two-stage states slot directly into a [`FlowTable`](crate::FlowTable):
/// slot reuse resets everything in place (no reallocation beyond
/// clearing the ring and queues), and a reassembly hole-skip
/// (`FlowReassembler::skip_to`)
/// resumes the scan at the new offset with boundary-local loss — both
/// stages history-masked, any suspended window abandoned (its bytes are
/// gone), counters kept.
impl crate::flow::FlowState for TwoStageState {
    fn reset(&mut self) {
        self.reset_at(0);
        self.vs.stats = TwoStageStats::default();
    }

    fn reset_at(&mut self, offset: u64) {
        self.pre_scan.reset_at(offset);
        self.pre_gram.reset_at(offset);
        self.short_hist = 0;
        self.short_have = 0;
        self.pos = offset;
        self.carry.clear();
        let vs = &mut self.vs;
        vs.verify.reset_at(offset);
        vs.verified_until = offset;
        vs.window_end = offset;
        vs.group_flag_end = 0;
        vs.ring.clear();
        vs.pending.clear();
        vs.group_open = false;
        vs.group_had_match = false;
        // Every lane was just reset to `offset` == the frontier.
        vs.group_mask = u64::MAX;
    }
}

/// Reusable per-scan buffers: stage 1's flag record, the verifier's
/// match staging buffer, the confirmed-match holding pen and the
/// verifier's [`ShardedScratch`]. Keep one per worker and the scan path
/// performs no steady-state allocation.
#[derive(Debug, Default)]
pub struct TwoStageScratch {
    flags: Vec<(u64, u32)>,
    verif: Vec<Match>,
    /// Confirmed matches whose end the stage-1 sweep has not passed
    /// yet; drained into `out` as it does. Chunk-local: every entry's
    /// end is inside the current chunk.
    due: Vec<Match>,
    sharded: ShardedScratch,
}

/// The two-stage composition: approximate pre-classifier (stage 1) in
/// front of an exact [`ShardedMatcher`] (stage 2). See the
/// [module docs](self) for the scan discipline and soundness argument.
pub struct TwoStageMatcher {
    pre: PreStage,
    /// Exact stage over the patterns stage 1 cannot witness exactly
    /// (the incompletely-covered ones on the prefix path, lengths ≥ 4
    /// on the gram path; the full set when that subset would be empty).
    exact: ShardedMatcher,
    /// Maps the exact stage's local pattern ids back to ids in the
    /// original set; `None` when the exact stage holds the full set.
    long_ids: Option<Vec<PatternId>>,
    shorts: Option<ShortLane>,
    max_back: u64,
    pre_memory: usize,
    /// Truncation depth the prefix-cover candidate was built at — the
    /// configured ceiling on sample-less builds, the cost-model frontier
    /// pick ([`PrefixCover::build_depth_tuned`]) on profiled ones.
    pre_depth: usize,
    kind: &'static str,
}

impl TwoStageMatcher {
    /// Builds both stages from one pattern set.
    ///
    /// # Errors
    ///
    /// Propagates [`ShardPlanError`] from the exact stage's shard
    /// planning; the approximate stage itself cannot fail.
    pub fn build(set: &PatternSet, config: &TwoStageConfig) -> Result<TwoStageMatcher, ShardPlanError> {
        Self::build_inner(set, config, None, false)
    }

    /// [`TwoStageMatcher::build`] with every profile-guided layer fed by
    /// `sample`: cover refinement and cover choice plus the stage-1 and
    /// stage-2 pair rows ([`ShardedMatcher::build_with_profile`]).
    pub fn build_with_profile(
        set: &PatternSet,
        config: &TwoStageConfig,
        sample: &[u8],
    ) -> Result<TwoStageMatcher, ShardPlanError> {
        Self::build_inner(set, config, Some(sample), false)
    }

    /// Test hook: force the gram-table pre-classifier even when the
    /// prefix cover models cheaper, so the gram + short-lane path stays
    /// exercised by suites that would otherwise always get the prefix.
    #[doc(hidden)]
    pub fn build_forced_grams(
        set: &PatternSet,
        config: &TwoStageConfig,
    ) -> Result<TwoStageMatcher, ShardPlanError> {
        Self::build_inner(set, config, None, true)
    }

    fn build_inner(
        set: &PatternSet,
        config: &TwoStageConfig,
        sample: Option<&[u8]>,
        force_grams: bool,
    ) -> Result<TwoStageMatcher, ShardPlanError> {
        // Candidate 1: prefix cover over the FULL set. Complete
        // truncations become exact stage-1 emissions, so short patterns
        // cost nothing extra here. With a traffic sample the builder
        // walks the measured flag-rate/table-size frontier instead of
        // taking the configured depth ceiling at face value.
        let (prefix, pre_depth) = match sample {
            Some(s) => PrefixCover::build_depth_tuned(set, &config.approx, s),
            None => (
                PrefixCover::build(set, &config.approx, None),
                config.approx.max_depth,
            ),
        };
        // Candidate 2: gram cover over the length-≥ 4 subset, with the
        // exact short-lane tables carrying the rest (a 2-gram hit can
        // never witness an occurrence exactly). When everything is
        // short the gram cover must carry the full set.
        let short_count = set.iter().filter(|(_, p)| p.len() <= 3).count();
        let gram_set: PatternSet = if short_count > 0 && short_count < set.len() {
            let longs: Vec<&[u8]> = set
                .iter()
                .filter(|(_, p)| p.len() >= 4)
                .map(|(_, p)| p)
                .collect();
            if set.is_case_insensitive() {
                PatternSet::new_nocase(&longs)
            } else {
                PatternSet::new(&longs)
            }
            .expect("long subset of a valid set is valid")
        } else {
            set.clone()
        };
        let grams = GramCover::build(&gram_set, &config.approx, sample);

        // Choice: among covers fitting the budget, the lower modelled
        // replay; if neither fits, the smaller. The prefix replay model
        // counts only window-opening truncations — complete ones verify
        // themselves.
        let rate: f64 = if set.is_case_insensitive() {
            1.0 / 230.0
        } else {
            1.0 / 256.0
        };
        // Family sizes: how many incompletely-covered source patterns
        // share each truncation. Small families are confirmed by direct
        // residual comparison (a couple of bytes per flag), so only
        // large families cost a window replay in the model.
        let cover_len: Vec<usize> = prefix.patterns().iter().map(|(_, t)| t.len()).collect();
        let trunc_of = prefix.truncation_of();
        let mut family = vec![0u32; cover_len.len()];
        for (pid, bytes) in set.iter() {
            let cid = trunc_of[pid.index()] as usize;
            if cover_len[cid] < bytes.len() {
                family[cid] += 1;
            }
        }
        let prefix_replay: f64 = prefix
            .patterns()
            .iter()
            .zip(prefix.forward_table())
            .zip(&family)
            .map(|(((_, t), &f), &fam)| {
                if f == 0 {
                    0.0
                } else if (fam as usize) <= CONFIRM_MAX_FAMILY {
                    // Each flag compares `fam` residuals, failing after
                    // ~1 byte on non-occurrences plus the fold lookup.
                    rate.powi(t.len() as i32) * f64::from(fam) * 2.0
                } else {
                    rate.powi(t.len() as i32) * f64::from(prefix.max_back() + f)
                }
            })
            .sum();
        let pick_prefix = !force_grams
            && match (
                prefix.memory_bytes() <= config.approx.budget_bytes,
                grams.memory_bytes() <= config.approx.budget_bytes,
            ) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => prefix_replay <= grams.expected_replay(),
                (false, false) => prefix.memory_bytes() <= grams.memory_bytes(),
            };

        // Window-replay shard subsetting bookkeeping (prefix path):
        // every member of an oversized family as `(cover id, exact-stage
        // local id)`, plus each kept cover pattern's cover id — enough
        // to patch the real per-family ownership masks into the kept
        // meta once the exact stage's shard plan exists.
        let mut windowed_local: Vec<(u32, u32)> = Vec::new();
        let mut kept_cid: Vec<u32> = Vec::new();
        let (mut pre, verifier, long_ids, shorts, max_back, kind) = if pick_prefix {
            let patterns = prefix.patterns().clone();
            let forward = prefix.forward_table();
            let mut meta: Vec<FlagMeta> = forward
                .iter()
                .zip(&family)
                .map(|(&f, &fam)| FlagMeta {
                    exact: u32::MAX,
                    forward: f,
                    // Small incomplete families are confirmed directly
                    // at the flag; only oversized ones open windows.
                    windowed: f > 0 && fam as usize > CONFIRM_MAX_FAMILY,
                    mask: u64::MAX,
                })
                .collect();
            // Per-truncation confirm families (pid + residual), and the
            // verifier subset: only patterns in oversized families need
            // the exact engine replay.
            let mut fam_members: Vec<Vec<(u32, &[u8])>> = vec![Vec::new(); cover_len.len()];
            let mut verif_ids: Vec<PatternId> = Vec::new();
            let mut verif_bytes: Vec<&[u8]> = Vec::new();
            for (pid, bytes) in set.iter() {
                let cid = trunc_of[pid.index()] as usize;
                if cover_len[cid] == bytes.len() {
                    debug_assert_eq!(meta[cid].exact, u32::MAX, "patterns are unique");
                    meta[cid].exact = pid.0;
                } else if family[cid] as usize <= CONFIRM_MAX_FAMILY {
                    fam_members[cid].push((pid.0, &bytes[cover_len[cid]..]));
                } else {
                    verif_ids.push(pid);
                    verif_bytes.push(bytes);
                }
            }
            // The verifier's local id for a windowed pattern is its
            // position in `verif_ids` when the verifier is the subset,
            // or its global id when the subset degenerates to the full
            // set.
            let full = verif_ids.is_empty() || verif_ids.len() == set.len();
            for (i, &pid) in verif_ids.iter().enumerate() {
                let cid = trunc_of[pid.index()];
                let local = if full { pid.0 } else { i as u32 };
                windowed_local.push((cid, local));
            }
            let (verifier, long_ids) = if verif_ids.is_empty() || verif_ids.len() == set.len() {
                // Nothing needs window replay (or everything does): the
                // verifier carries the full set. With no windowed flags
                // it stays idle.
                (set.clone(), None)
            } else {
                let sub = if set.is_case_insensitive() {
                    PatternSet::new_nocase(&verif_bytes)
                } else {
                    PatternSet::new(&verif_bytes)
                }
                .expect("subset of a valid set is valid");
                (sub, Some(verif_ids))
            };
            // Evict complete, family-less single-byte cover patterns
            // into the dense direct-emit table; keep everything that
            // carries a confirm family or can open a window for the
            // automaton, building the kept-aligned confirm table on the
            // way.
            let mut singles = Box::new([u32::MAX; 256]);
            let mut kept_bytes: Vec<&[u8]> = Vec::new();
            let mut kept_meta: Vec<FlagMeta> = Vec::new();
            let mut confirm = ConfirmTable {
                off: vec![0],
                entries: Vec::new(),
                blob: Vec::new(),
                fold: Box::new([0u8; 256]),
            };
            for raw in 0..=255u8 {
                confirm.fold[usize::from(raw)] = patterns.fold(raw);
            }
            for (cid, ((_, t), m)) in patterns.iter().zip(meta).enumerate() {
                if t.len() == 1 && !m.windowed && fam_members[cid].is_empty() {
                    // No sharer is incomplete and truncations are
                    // unique — so `exact` is set.
                    debug_assert_ne!(m.exact, u32::MAX);
                    for raw in 0..=255u8 {
                        if patterns.fold(raw) == t[0] {
                            singles[usize::from(raw)] = m.exact;
                        }
                    }
                } else {
                    for &(pid, residual) in &fam_members[cid] {
                        let start = confirm.blob.len() as u32;
                        confirm
                            .blob
                            .extend(residual.iter().map(|&b| patterns.fold(b)));
                        confirm.entries.push(ConfirmEntry {
                            pid,
                            start,
                            len: residual.len() as u32,
                        });
                    }
                    confirm.off.push(confirm.entries.len() as u32);
                    kept_bytes.push(t);
                    kept_meta.push(m);
                    kept_cid.push(cid as u32);
                }
            }
            // Compile the kept cover through the exact pipeline — same
            // reduce, anchors and pair rows as the monolithic engine.
            let automaton = if kept_bytes.is_empty() {
                None
            } else {
                let kept = if set.is_case_insensitive() {
                    PatternSet::new_nocase(&kept_bytes)
                } else {
                    PatternSet::new(&kept_bytes)
                }
                .expect("subset of a valid cover is valid");
                let dfa = Dfa::build(&kept);
                let reduced = ReducedAutomaton::reduce(&dfa, config.exact.dtp);
                let compiled = if config.exact.prefilter {
                    let anchors = AnchorSet::build(&dfa, &kept, config.exact.anchor_horizon);
                    let pairs = config.exact.pairs.then(|| match sample {
                        Some(s) => PairTable::build_profiled(
                            &dfa,
                            &kept,
                            &anchors,
                            config.exact.pair_budget_bytes,
                            s,
                        ),
                        None => PairTable::build_with_region(
                            &dfa,
                            &kept,
                            &anchors,
                            config.exact.pair_budget_bytes,
                        ),
                    });
                    let a = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
                    match pairs {
                        Some(p) if !p.is_empty() => a.with_pair_table(p),
                        _ => a,
                    }
                } else {
                    CompiledAutomaton::compile(&reduced)
                };
                Some(Box::new((compiled, kept)))
            };
            // Lookback only has to reach the start of *windowed*
            // truncations (complete ones never open windows), so the
            // depth of fully-covered long patterns does not widen every
            // window or the per-flow ring.
            let max_back = kept_meta
                .iter()
                .zip(kept_bytes.iter())
                .filter(|(m, _)| m.windowed)
                .map(|(_, t)| t.len() as u64)
                .max()
                .unwrap_or(0);
            (
                PreStage::Prefix {
                    automaton,
                    meta: kept_meta,
                    simd: SinglesSimd::build(&singles),
                    singles,
                    confirm,
                },
                verifier,
                long_ids,
                None,
                max_back,
                "prefix-dfa",
            )
        } else {
            // Gram path: exact short-lane tables for lengths ≤ 3, the
            // gram cover + windowed verifier for the rest.
            let (verifier, long_ids, shorts) = if short_count > 0 && short_count < set.len() {
                let mut ids = Vec::with_capacity(set.len() - short_count);
                let mut fold = [0u8; 256];
                for (b, slot) in fold.iter_mut().enumerate() {
                    *slot = set.fold(b as u8);
                }
                let mut singles = vec![u32::MAX; 256].into_boxed_slice();
                let mut pairs: Option<Box<[u32]>> = None;
                let mut triples: Vec<(u32, u32)> = Vec::new();
                for (id, p) in set.iter() {
                    match *p {
                        // Stored patterns are already folded for nocase
                        // sets, so they index the folded-input tables
                        // directly.
                        [b] => singles[usize::from(b)] = id.0,
                        [a, b] => {
                            let table = pairs.get_or_insert_with(|| {
                                vec![u32::MAX; 1 << 16].into_boxed_slice()
                            });
                            table[usize::from(a) << 8 | usize::from(b)] = id.0;
                        }
                        [a, b, c] => {
                            let key = u32::from(a) << 16 | u32::from(b) << 8 | u32::from(c);
                            triples.push((key, id.0));
                        }
                        _ => ids.push(id),
                    }
                }
                (
                    gram_set,
                    Some(ids),
                    Some(ShortLane {
                        fold,
                        singles,
                        pairs,
                        triples: (!triples.is_empty()).then(|| TripleTable::build(&triples)),
                    }),
                )
            } else {
                (gram_set, None, None)
            };
            let max_back = u64::from(grams.max_back());
            (
                PreStage::Grams(Box::new(grams)),
                verifier,
                long_ids,
                shorts,
                max_back,
                "gram-table",
            )
        };

        let exact = match sample {
            Some(s) => ShardedMatcher::build_with_profile(&verifier, &config.exact, s)?,
            None => ShardedMatcher::build(&verifier, &config.exact)?,
        };
        // Patch the per-family ownership masks into the windowed kept
        // meta now that the verifier's shard plan exists: a window
        // replays only through the shards owning its flagged family.
        // Shards at index ≥ 64 contribute no bit — those lanes always
        // scan (see the mask convention in `crate::sharded`).
        if !windowed_local.is_empty() {
            if let PreStage::Prefix { meta, .. } = &mut pre {
                let shard_of = exact.shard_of();
                let mut mask_of = vec![0u64; cover_len.len()];
                for &(cid, local) in &windowed_local {
                    let s = shard_of[local as usize];
                    if s < 64 {
                        mask_of[cid as usize] |= 1u64 << s;
                    }
                }
                for (k, m) in meta.iter_mut().enumerate() {
                    if m.windowed {
                        m.mask = mask_of[kept_cid[k] as usize];
                    }
                }
            }
        }
        let mut pre_memory = match &pre {
            PreStage::Prefix { automaton, .. } => {
                automaton.as_deref().map_or(0, |(a, _)| a.memory_bytes()) + 256 * 4
            }
            PreStage::Grams(g) => g.memory_bytes(),
        };
        if let Some(lane) = &shorts {
            pre_memory += lane.memory_bytes();
        }
        Ok(TwoStageMatcher {
            pre,
            exact,
            long_ids,
            shorts,
            max_back,
            pre_memory,
            pre_depth,
            kind,
        })
    }

    /// Which cover shape the builder deployed: `"prefix-dfa"` or
    /// `"gram-table"`.
    pub fn pre_kind(&self) -> &'static str {
        self.kind
    }

    /// Resident bytes of the stage-1 scan tables (the budget-governed
    /// figure: compiled arena for the prefix cover; the gram tables
    /// plus the short-pattern tables otherwise).
    pub fn pre_memory_bytes(&self) -> usize {
        self.pre_memory
    }

    /// Truncation depth the prefix cover was built at: the configured
    /// ceiling for sample-less builds, the measured flag-rate/table-size
    /// frontier pick for profiled ones. Meaningful on the
    /// `"prefix-dfa"` path; reports the candidate's depth either way.
    pub fn pre_depth(&self) -> usize {
        self.pre_depth
    }

    /// Uniform backward reach of stage-1 flags — the lookback every
    /// [`TwoStageState`] retains.
    pub fn max_back(&self) -> u64 {
        self.max_back
    }

    /// The exact verifier (over the patterns stage 1 cannot witness
    /// exactly, or the full set when that subset would be empty).
    pub fn exact(&self) -> &ShardedMatcher {
        &self.exact
    }

    /// Fresh state for one flow.
    pub fn flow_state(&self) -> TwoStageState {
        TwoStageState {
            pre_scan: ScanState::fresh(),
            pre_gram: ApproxState::fresh(),
            short_hist: 0,
            short_have: 0,
            pos: 0,
            carry: Vec::new(),
            vs: VerifySide {
                verify: self.exact.flow_state(),
                verified_until: 0,
                window_end: 0,
                group_flag_end: 0,
                ring: Vec::with_capacity(self.max_back as usize),
                pending: VecDeque::new(),
                group_open: false,
                group_had_match: false,
                // Every lane starts at offset 0 == the frontier.
                group_mask: u64::MAX,
                stats: TwoStageStats::default(),
            },
        }
    }

    /// Reusable scan buffers.
    pub fn scratch(&self) -> TwoStageScratch {
        TwoStageScratch {
            flags: Vec::with_capacity(64),
            verif: Vec::with_capacity(64),
            due: Vec::with_capacity(16),
            sharded: self.exact.scratch(),
        }
    }

    /// Whole-payload scan: clears `out`, writes every occurrence in
    /// canonical `(end, pattern)` order — byte-for-byte the single-stage
    /// result — and returns this scan's counters.
    pub fn scan_into(
        &self,
        payload: &[u8],
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) -> TwoStageStats {
        out.clear();
        let mut state = self.flow_state();
        self.scan_chunk_into(&mut state, payload, scratch, out);
        self.finish_flow(&mut state, out);
        state.vs.stats
    }

    /// Consumes one chunk of a flow, **appending** matches with
    /// stream-absolute `end` offsets and leaving `state` ready for the
    /// next chunk — the same contract as every other `scan_chunk_into`
    /// in the workspace, with stage-2 work only on flagged windows. A
    /// window extending past the chunk stays open: the flow suspends
    /// mid-window and the next chunk resumes verification seamlessly.
    /// `out` is in canonical order after every call.
    pub fn scan_chunk_into(
        &self,
        state: &mut TwoStageState,
        chunk: &[u8],
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) {
        self.scan_chunk_impl(state, chunk, scratch, out, false);
    }

    /// Degraded scan tier: stage 1 runs in full — every byte swept,
    /// exact-complete flags, single-byte hits and small-family confirms
    /// still emit **exactly** — but window-opening flags are only
    /// *counted* ([`TwoStageStats::suspect_flags`]), never replayed
    /// through the exact engine. Occurrences of incompletely-covered
    /// big-family patterns are therefore missed; everything reported is
    /// still a true match. This is the overload-shedding tier the
    /// service runtime descends to when even windowed replay cannot
    /// keep up: per-byte cost collapses to the cache-resident stage-1
    /// sweep while the suspect counter preserves an honest record of
    /// what went unverified.
    pub fn scan_chunk_flag_only(
        &self,
        state: &mut TwoStageState,
        chunk: &[u8],
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
    ) {
        self.scan_chunk_impl(state, chunk, scratch, out, true);
    }

    fn scan_chunk_impl(
        &self,
        state: &mut TwoStageState,
        chunk: &[u8],
        scratch: &mut TwoStageScratch,
        out: &mut Vec<Match>,
        flag_only: bool,
    ) {
        if flag_only && state.vs.group_open {
            // A window suspended by a previous full-fidelity chunk
            // will not be replayed at this tier; retire it so the
            // sweep's fast paths apply and the fp accounting closes.
            state.vs.close_group();
        }
        let base = state.pos;
        let chunk_end = base + chunk.len() as u64;
        state.vs.stats.pre_bytes += chunk.len() as u64;
        let ctx = FeedCtx {
            exact: &self.exact,
            long_ids: self.long_ids.as_deref(),
            max_back: self.max_back,
            chunk,
            base,
        };

        match &self.pre {
            PreStage::Prefix {
                automaton,
                meta,
                singles,
                simd,
                confirm,
            } => {
                // The walk records flags and nothing else: the stepper
                // loop is register-starved, and a callback that touches
                // the verifier state spills it. Flags are rare (the
                // singles table absorbs the dense byte-level hits), so
                // the replayed record stays tiny; the single-byte table
                // then sweeps the gaps between flags in stream order.
                let TwoStageState {
                    pre_scan, vs, carry, ..
                } = state;
                // Resume residual comparisons cut off by the previous
                // chunk boundary; completions join `due` and surface
                // once the sweep passes their end.
                if !carry.is_empty() {
                    let due = &mut scratch.due;
                    carry.retain_mut(|c| {
                        let e = &confirm.entries[c.entry as usize];
                        let from = (e.start + c.matched) as usize;
                        let res = &confirm.blob[from..(e.start + e.len) as usize];
                        let take = res.len().min(chunk.len());
                        let ok = res[..take]
                            .iter()
                            .zip(chunk)
                            .all(|(&r, &b)| r == confirm.fold[usize::from(b)]);
                        vs.stats.verified_bytes += take as u64;
                        if !ok {
                            // The carried candidate was a false
                            // positive after all.
                            vs.stats.fp_windows += 1;
                            return false;
                        }
                        if take == res.len() {
                            due.push(Match {
                                end: c.end as usize,
                                pattern: PatternId(e.pid),
                            });
                            return false;
                        }
                        c.matched += take as u32;
                        true
                    });
                }
                scratch.flags.clear();
                if let Some((compiled, patterns)) = automaton.as_deref() {
                    let matcher = CompiledMatcher::new(compiled, patterns);
                    let flags = &mut scratch.flags;
                    matcher.for_each_match_chunk(pre_scan, chunk, |m| {
                        flags.push((m.end as u64, m.pattern.0));
                    });
                }
                vs.stats.flags += scratch.flags.len() as u64;
                let flags = std::mem::take(&mut scratch.flags);
                let mut swept = 0usize;
                for &(end, pidx) in &flags {
                    // Retire the open window group at the first flag —
                    // of any kind — past its end, not just the next
                    // *windowed* one: while a group is open every swept
                    // single detours through the pending queue, so a
                    // group left open across the (often long) gap to
                    // the next windowed flag drags the whole gap onto
                    // that slow path. The replay itself is unchanged —
                    // same target, same early-retirement stop — and
                    // because retirement only stops at or past the last
                    // group flag + 2, the flush below provably empties
                    // `pending` (everything queued inside the group
                    // ends at or before that flag).
                    if vs.group_open && end > vs.window_end {
                        let target = vs.window_end;
                        vs.feed(&ctx, target, scratch, out);
                        vs.close_group();
                        let upto = vs.verified_until;
                        vs.flush_pending(upto, out);
                    }
                    let local = end as usize - base as usize;
                    vs.sweep_singles(singles, simd, &ctx, &mut swept, local, out);
                    let fm = &meta[pidx as usize];
                    if fm.exact != u32::MAX {
                        vs.emit_exact(
                            Match {
                                end: end as usize,
                                pattern: PatternId(fm.exact),
                            },
                            out,
                        );
                    }
                    if fm.windowed {
                        if flag_only {
                            vs.stats.suspect_flags += 1;
                        } else {
                            vs.on_window_flag(&ctx, end, fm.forward, fm.mask, scratch, out);
                        }
                    }
                    // Confirm the flag's residual family in place.
                    let cs = confirm.off[pidx as usize] as usize;
                    let ce = confirm.off[pidx as usize + 1] as usize;
                    if cs != ce {
                        vs.stats.windows += 1;
                        let mut hit = false;
                        // Stream bytes this flag makes stage 2 read:
                        // the candidates all read the same bytes, so
                        // the flag's cost is the longest examination,
                        // not the sum.
                        let mut examined = 0usize;
                        for (i, e) in confirm.entries[cs..ce].iter().enumerate() {
                            let res =
                                &confirm.blob[e.start as usize..(e.start + e.len) as usize];
                            let take = res.len().min(chunk.len() - local);
                            let mut eq = 0usize;
                            while eq < take
                                && res[eq] == confirm.fold[usize::from(chunk[local + eq])]
                            {
                                eq += 1;
                            }
                            let ok = eq == take;
                            examined = examined.max(eq + usize::from(!ok));
                            if !ok {
                                continue;
                            }
                            hit = true;
                            if take == res.len() {
                                scratch.due.push(Match {
                                    end: end as usize + res.len(),
                                    pattern: PatternId(e.pid),
                                });
                            } else {
                                carry.push(ConfirmCarry {
                                    entry: (cs + i) as u32,
                                    matched: take as u32,
                                    end: end + res.len() as u64,
                                });
                            }
                        }
                        vs.stats.verified_bytes += examined as u64;
                        if !hit {
                            vs.stats.fp_windows += 1;
                        }
                    }
                    // Surface confirmed matches the sweep has passed.
                    if !scratch.due.is_empty() {
                        let upto = end as usize;
                        scratch.due.retain(|&m| {
                            if m.end <= upto {
                                push_canonical(out, m);
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
                scratch.flags = flags;
                vs.sweep_singles(singles, simd, &ctx, &mut swept, chunk.len(), out);
                // Every confirmed end lies inside this chunk, so the
                // final sweep surfaces the rest.
                for &m in scratch.due.iter() {
                    push_canonical(out, m);
                }
                scratch.due.clear();
            }
            PreStage::Grams(g) => {
                // Exact short-pattern lane: table lookups per byte; the
                // gram sweep is not interleaved with the lane, so lane
                // matches always queue until the frontier passes them.
                if let Some(lane) = &self.shorts {
                    let mut hist = state.short_hist;
                    let mut have = state.short_have;
                    for (i, &raw) in chunk.iter().enumerate() {
                        let b = lane.fold[usize::from(raw)];
                        hist = (hist << 8 | u32::from(b)) & 0x00FF_FFFF;
                        have = (have + 1).min(3);
                        let end = (base + i as u64 + 1) as usize;
                        // Up to three patterns can end on this byte
                        // (one per length); canonical order within an
                        // end is by global id.
                        let mut due = [u32::MAX; 3];
                        due[0] = lane.singles[usize::from(b)];
                        if have >= 2 {
                            if let Some(t) = &lane.pairs {
                                due[1] = t[(hist & 0xFFFF) as usize];
                            }
                        }
                        if have >= 3 {
                            if let Some(t) = &lane.triples {
                                due[2] = t.get(hist).unwrap_or(u32::MAX);
                            }
                        }
                        if due != [u32::MAX; 3] {
                            due.sort_unstable();
                            for id in due {
                                if id != u32::MAX {
                                    state.vs.pending.push_back(Match {
                                        end,
                                        pattern: PatternId(id),
                                    });
                                }
                            }
                        }
                    }
                    state.short_hist = hist;
                    state.short_have = have;
                }
                scratch.flags.clear();
                {
                    let flags = &mut scratch.flags;
                    g.scan_flags(&mut state.pre_gram, chunk, &mut |f| {
                        flags.push((f.end, f.forward));
                    });
                }
                state.vs.stats.flags += scratch.flags.len() as u64;
                let flags = std::mem::take(&mut scratch.flags);
                for &(end, forward) in &flags {
                    if flag_only {
                        state.vs.stats.suspect_flags += 1;
                    } else {
                        // Gram flags carry no family identity, so every
                        // lane replays the window.
                        state.vs.on_window_flag(&ctx, end, forward, u64::MAX, scratch, out);
                    }
                }
                scratch.flags = flags;
            }
        }

        // Replay what the chunk can serve of the active window; close it
        // if it ends inside this chunk — or if the verifier retired it
        // early — and suspend it otherwise.
        let vs = &mut state.vs;
        if vs.group_open {
            let target = vs.window_end.min(chunk_end);
            vs.feed(&ctx, target, scratch, out);
            if vs.verified_until < target || vs.window_end <= chunk_end {
                vs.close_group();
            }
        }

        // Pending watermark: any future flag ends past `chunk_end`, so
        // no future verifier feed can start before `chunk_end -
        // max_back` — pending matches at or before that line can never
        // be preceded by a verifier match.
        vs.flush_pending(chunk_end.saturating_sub(self.max_back), out);

        Self::update_ring(&mut vs.ring, self.max_back as usize, chunk);
        state.pos = chunk_end;
    }

    /// Declares a flow finished: closes any suspended window for the
    /// false-positive accounting and emits the exact matches still
    /// waiting on the (now dead) verify frontier. No bytes are scanned;
    /// the state's counters become final.
    pub fn finish_flow(&self, state: &mut TwoStageState, out: &mut Vec<Match>) {
        // Residuals still in flight never completed: the stream ended
        // inside them, so they are not occurrences.
        state.carry.clear();
        let vs = &mut state.vs;
        if vs.group_open {
            vs.close_group();
        }
        while let Some(m) = vs.pending.pop_front() {
            push_canonical(out, m);
        }
    }

    /// Slides `chunk` into the lookback ring, keeping the last `cap`
    /// stream bytes.
    fn update_ring(ring: &mut Vec<u8>, cap: usize, chunk: &[u8]) {
        if chunk.len() >= cap {
            ring.clear();
            ring.extend_from_slice(&chunk[chunk.len() - cap..]);
        } else {
            let keep = cap - chunk.len();
            if ring.len() > keep {
                ring.drain(..ring.len() - keep);
            }
            ring.extend_from_slice(chunk);
        }
    }
}

impl std::fmt::Debug for TwoStageMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoStageMatcher")
            .field("pre_kind", &self.kind)
            .field("pre_memory_bytes", &self.pre_memory)
            .field("max_back", &self.max_back)
            .field("short_lane", &self.shorts.is_some())
            .field("shards", &self.exact.shard_count())
            .finish()
    }
}

impl dpi_automaton::MultiMatcher for TwoStageMatcher {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.scan_into(haystack, &mut self.scratch(), &mut out);
        out
    }

    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        self.scan_into(haystack, &mut self.scratch(), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::MultiMatcher;

    fn build(patterns: &[&str]) -> (PatternSet, TwoStageMatcher, ShardedMatcher) {
        let set = PatternSet::new(patterns).unwrap();
        let two = TwoStageMatcher::build(&set, &TwoStageConfig::with_cores(1)).unwrap();
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        (set, two, exact)
    }

    /// Same set under a 1-byte budget: the cover degenerates to depth
    /// 1, so almost everything is windowed — the opposite extreme of
    /// the default build where small sets are covered completely.
    fn build_tight(patterns: &[&str]) -> (TwoStageMatcher, ShardedMatcher) {
        let set = PatternSet::new(patterns).unwrap();
        let config = TwoStageConfig {
            approx: ApproxConfig::with_budget(1),
            exact: ShardedConfig::with_cores(1),
        };
        let two = TwoStageMatcher::build(&set, &config).unwrap();
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        (two, exact)
    }

    #[test]
    fn matches_single_stage_on_figure1() {
        let (_, two, exact) = build(&["he", "she", "his", "hers"]);
        let hay = b"ushers and his herd of hershey hens";
        assert_eq!(two.find_all(hay), exact.find_all(hay));
    }

    /// The shuffle tables driving the masked sweep must classify every
    /// byte exactly as the direct-emit table does — the vector kernels
    /// themselves are pinned to `model_contains` by the `simd`
    /// conformance suite, so this closes the chain table → tables →
    /// lanes.
    #[cfg(feature = "simd")]
    #[test]
    fn singles_simd_tables_mirror_the_emit_table() {
        let (_, two, _) = build(&["x", "q", "longer-pattern", "another-rule"]);
        let PreStage::Prefix { singles, simd, .. } = &two.pre else {
            panic!("single-byte rules force the prefix path");
        };
        let Some((tables, _)) = &simd.inner else {
            return; // CPU without SSSE3: the sweep stays scalar.
        };
        for b in 0..=255u8 {
            assert_eq!(
                tables.model_contains(b),
                singles[usize::from(b)] != u32::MAX,
                "byte {b:#04x}"
            );
        }
    }

    #[test]
    fn clean_traffic_never_reaches_the_verifier() {
        let (_, two, _) = build(&["attack-signature", "exploit-marker"]);
        let mut out = Vec::new();
        let stats = two.scan_into(&[b'z'; 4096], &mut two.scratch(), &mut out);
        assert!(out.is_empty());
        assert_eq!(stats.verified_bytes, 0);
        assert_eq!(stats.windows, 0);
        assert_eq!(stats.pre_bytes, 4096);
    }

    #[test]
    fn complete_covers_emit_exactly_without_windows() {
        // The default budget covers these patterns whole, so every
        // stage-1 flag is an exact occurrence: no windows, no replay,
        // whatever the pattern length.
        let (_, two, exact) = build(&["k", "qz", "wvu", "signature-long"]);
        let hay = b"kqz-wvukk-signature-long-qzwvuk".to_vec();
        let mut out = Vec::new();
        let stats = two.scan_into(&hay, &mut two.scratch(), &mut out);
        assert_eq!(out, exact.find_all(&hay));
        assert_eq!(stats.windows, 0, "complete covers must not open windows");
        assert_eq!(stats.verified_bytes, 0);
        assert!(stats.flags >= out.len() as u64);
    }

    #[test]
    fn chunked_scan_equals_whole_scan_across_all_cuts() {
        let (_, two, exact) = build(&["abcd", "cdef", "q", "deface"]);
        let (tight, _) = build_tight(&["abcd", "cdef", "q", "deface"]);
        let hay = b"xxabcdefqxxcdefabcd-deface-abcdeface".to_vec();
        let whole = exact.find_all(&hay);
        for matcher in [&two, &tight] {
            for cut in 0..hay.len() {
                let mut state = matcher.flow_state();
                let mut scratch = matcher.scratch();
                let mut out = Vec::new();
                matcher.scan_chunk_into(&mut state, &hay[..cut], &mut scratch, &mut out);
                matcher.scan_chunk_into(&mut state, &hay[cut..], &mut scratch, &mut out);
                matcher.finish_flow(&mut state, &mut out);
                assert_eq!(out, whole, "cut at {cut} ({:?})", matcher.pre_kind());
                assert_eq!(state.stats().pre_bytes, hay.len() as u64);
            }
        }
    }

    #[test]
    fn single_byte_chunks_resume_mid_window() {
        // The tight budget truncates both patterns, so windows open and
        // must survive byte-at-a-time chunking.
        let (two, exact) = build_tight(&["longpattern", "gpat"]);
        let hay = b"xx-longpatterns-and-gpats".to_vec();
        let whole = exact.find_all(&hay);
        let mut state = two.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        for b in &hay {
            two.scan_chunk_into(&mut state, std::slice::from_ref(b), &mut scratch, &mut out);
        }
        two.finish_flow(&mut state, &mut out);
        assert_eq!(out, whole);
        assert!(state.stats().windows > 0, "truncated covers must window");
    }

    #[test]
    fn fp_accounting_separates_hits_from_misses() {
        // A 1-byte budget forces the minimum depth-1 cover, so the
        // decoy's shared prefix flags a window the verifier rejects.
        let set = PatternSet::new(["needle-alpha", "needle-beta"]).unwrap();
        let config = TwoStageConfig {
            approx: ApproxConfig::with_budget(1),
            exact: ShardedConfig::with_cores(1),
        };
        let two = TwoStageMatcher::build(&set, &config).unwrap();
        // One real occurrence, one decoy that only matches the prefix.
        let hay = b"...needle-alpha...needle-nope...".to_vec();
        let mut out = Vec::new();
        let stats = two.scan_into(&hay, &mut two.scratch(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(stats.windows >= 2);
        assert!(stats.fp_windows >= 1);
        assert!(stats.fp_windows < stats.windows);
        assert!(stats.verified_bytes > 0);
        assert!(stats.replay_fraction() < 1.0);
        assert!(stats.fp_window_rate() > 0.0);
    }

    #[test]
    fn nocase_sets_match_case_insensitively() {
        let set = PatternSet::new_nocase(["MiXeD-CaSe"]).unwrap();
        let two = TwoStageMatcher::build(&set, &TwoStageConfig::with_cores(1)).unwrap();
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        let hay = b"zz MIXED-case mixed-CASE zz";
        let found = two.find_all(hay);
        assert_eq!(found.len(), 2);
        assert_eq!(found, exact.find_all(hay));
    }

    #[test]
    fn sharded_config_switch_reaches_two_stage() {
        let set = PatternSet::new(["switch-pattern"]).unwrap();
        let config = ShardedConfig::with_cores(2).two_stage(ApproxConfig::default());
        assert_eq!(config.exact.cores, 2);
        let two = TwoStageMatcher::build(&set, &config).unwrap();
        assert!(two.find_all(b"a switch-pattern here").len() == 1);
    }

    #[test]
    fn stacked_same_end_matches_emit_in_id_order() {
        // "u", "uu", "uuu" all end on every third byte of "uuuu…" — the
        // cover's suffix outputs arrive in automaton order, and the
        // emission path must restore global-id order per end offset.
        let (_, two, exact) = build(&["u", "uu", "uuu", "uuuu-long-tail"]);
        let hay = b"uuuuuu xx uuu".to_vec();
        assert_eq!(two.find_all(&hay), exact.find_all(&hay));
        let (tight, _) = build_tight(&["u", "uu", "uuu", "uuuu-long-tail"]);
        assert_eq!(tight.find_all(&hay), exact.find_all(&hay));
    }

    #[test]
    fn exact_and_windowed_matches_merge_in_canonical_order_across_cuts() {
        // Under a tight budget "x" stays complete (depth 1) while "xy"
        // and "xylophone" truncate to it — the same flag both emits an
        // exact match and opens a window, and verifier matches
        // interleave with exact ones at identical and adjacent ends.
        let (tight, exact) = build_tight(&["x", "xy", "xylophone"]);
        let hay = b"a xylophone-xy-x xyxy xylophon".to_vec();
        let whole = exact.find_all(&hay);
        assert_eq!(tight.find_all(&hay), whole);
        for cut in 0..hay.len() {
            let mut state = tight.flow_state();
            let mut scratch = tight.scratch();
            let mut out = Vec::new();
            tight.scan_chunk_into(&mut state, &hay[..cut], &mut scratch, &mut out);
            tight.scan_chunk_into(&mut state, &hay[cut..], &mut scratch, &mut out);
            tight.finish_flow(&mut state, &mut out);
            assert_eq!(out, whole, "cut at {cut}");
        }
    }

    #[test]
    fn all_short_sets_are_covered_completely() {
        // Lengths ≤ 3 always fit the cover whole: everything emits
        // exactly from stage 1 and the verifier stays idle.
        let (_, two, exact) = build(&["a", "bc", "def"]);
        let hay = b"abcabc-a-bc-def-adef".to_vec();
        let mut out = Vec::new();
        let stats = two.scan_into(&hay, &mut two.scratch(), &mut out);
        assert_eq!(out, exact.find_all(&hay));
        assert_eq!(stats.windows, 0);
    }

    #[test]
    fn nocase_exact_flags_fold_input() {
        let set = PatternSet::new_nocase(["Q", "aB", "XyZ", "Needle-Case"]).unwrap();
        let two = TwoStageMatcher::build(&set, &TwoStageConfig::with_cores(1)).unwrap();
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        let hay = b"q AB xYz qq ab XYZ needle-CASE Q";
        assert_eq!(two.find_all(hay), exact.find_all(hay));
    }

    /// Ten-plus-member families under a 1-byte cover budget: both
    /// families exceed [`CONFIRM_MAX_FAMILY`], so their flags open real
    /// replay windows, and a small per-shard arena budget spreads the
    /// verifier across shards — the masked-replay configuration.
    fn build_masked() -> (PatternSet, TwoStageMatcher, ShardedMatcher) {
        let patterns: Vec<String> = (0..10)
            .flat_map(|i| {
                [
                    format!("alpha-family-{i:02}-signature"),
                    format!("beta-family-{i:02}-marker"),
                ]
            })
            .collect();
        let set = PatternSet::new(&patterns).unwrap();
        let mut exact_cfg = ShardedConfig::with_cores(2);
        exact_cfg.budget_bytes = 32 * 1024;
        let config = TwoStageConfig {
            approx: ApproxConfig::with_budget(1),
            exact: exact_cfg,
        };
        let two = TwoStageMatcher::build(&set, &config).unwrap();
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        (set, two, exact)
    }

    #[test]
    fn windowed_flags_carry_real_shard_masks() {
        let (_, two, _) = build_masked();
        assert_eq!(two.pre_kind(), "prefix-dfa");
        assert!(two.exact().shard_count() > 1, "need a multi-shard verifier");
        let PreStage::Prefix { meta, .. } = &two.pre else {
            panic!("prefix path expected");
        };
        let masks: Vec<u64> = meta.iter().filter(|m| m.windowed).map(|m| m.mask).collect();
        assert!(masks.len() >= 2, "both families must window");
        let all = (1u64 << two.exact().shard_count().min(64)) - 1;
        assert!(
            masks.iter().any(|&m| m != u64::MAX && m.count_ones() < all.count_ones()),
            "at least one family must subset the shards: {masks:?}"
        );
    }

    #[test]
    fn masked_multi_shard_replay_equals_single_stage_across_cuts() {
        let (_, two, exact) = build_masked();
        // Adjacent occurrences of different families force merged
        // windows whose second family's lanes join the open group; the
        // truncated decoys open windows that verify empty on some
        // lanes.
        let hay = b"alpha-family-03-signature beta-family-07-markeralpha-family-09-signature \
                    alpha-family beta-xx alpha-family-00-signaturebeta-family-00-marker end"
            .to_vec();
        let whole = exact.find_all(&hay);
        assert!(whole.len() >= 4);
        assert_eq!(two.find_all(&hay), whole);
        for cut in 0..hay.len() {
            let mut state = two.flow_state();
            let mut scratch = two.scratch();
            let mut out = Vec::new();
            two.scan_chunk_into(&mut state, &hay[..cut], &mut scratch, &mut out);
            two.scan_chunk_into(&mut state, &hay[cut..], &mut scratch, &mut out);
            two.finish_flow(&mut state, &mut out);
            assert_eq!(out, whole, "cut at {cut}");
        }
    }

    #[test]
    fn masked_replay_single_byte_chunks_stay_exact() {
        let (_, two, exact) = build_masked();
        let hay = b"xbeta-family-05-markeralpha-family-05-signature beta-family-09-marker".to_vec();
        let whole = exact.find_all(&hay);
        assert!(!whole.is_empty());
        let mut state = two.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        for b in &hay {
            two.scan_chunk_into(&mut state, std::slice::from_ref(b), &mut scratch, &mut out);
        }
        two.finish_flow(&mut state, &mut out);
        assert_eq!(out, whole);
        assert!(state.stats().windows > 0);
    }

    #[test]
    fn flag_only_scan_is_sound_and_counts_suspects() {
        let (set, two, exact) = build_masked();
        let hay = b"qq alpha-family-03-signature and beta-family-07-marker qq".to_vec();
        let whole = exact.find_all(&hay);
        assert!(whole.len() >= 2, "planted family occurrences must match");
        // Degraded tier: windowed flags counted, never replayed.
        let mut state = two.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        two.scan_chunk_flag_only(&mut state, &hay, &mut scratch, &mut out);
        two.finish_flow(&mut state, &mut out);
        let stats = state.stats();
        assert!(stats.suspect_flags > 0, "windowed flags must be counted");
        assert_eq!(stats.verified_bytes, 0, "nothing replays at this tier");
        assert!(out.len() < whole.len(), "big-family occurrences go unverified");
        for m in &out {
            assert!(whole.contains(m), "flag-only may not invent matches: {m:?}");
            assert_eq!(
                &hay[m.end - set.pattern(m.pattern).len()..m.end],
                set.pattern(m.pattern),
                "every reported match is a true occurrence"
            );
        }
        // Full-fidelity scans never touch the suspect counter.
        let mut full = Vec::new();
        let full_stats = two.scan_into(&hay, &mut two.scratch(), &mut full);
        assert_eq!(full, whole);
        assert_eq!(full_stats.suspect_flags, 0);
    }

    #[test]
    fn flag_only_retires_a_window_suspended_by_a_full_chunk() {
        let (_, two, exact) = build_masked();
        let hay = b"alpha-family-03-signature tail bytes".to_vec();
        // Cut inside the occurrence: the full-fidelity chunk suspends
        // mid-window, then the degraded tier takes over.
        let cut = 10;
        let mut state = two.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        two.scan_chunk_into(&mut state, &hay[..cut], &mut scratch, &mut out);
        two.scan_chunk_flag_only(&mut state, &hay[cut..], &mut scratch, &mut out);
        two.finish_flow(&mut state, &mut out);
        // The tier drop may lose the in-flight occurrence, but must not
        // invent matches, corrupt order, or leave the group open.
        let whole = exact.find_all(&hay);
        for m in &out {
            assert!(whole.contains(m));
        }
        assert!(!state.vs.group_open);
        assert!(out.windows(2).all(|w| {
            (w[0].end, w[0].pattern.index()) <= (w[1].end, w[1].pattern.index())
        }));
    }

    #[test]
    fn flow_state_reset_at_resumes_with_boundary_local_loss() {
        use crate::flow::FlowState;
        let (_, two, _) = build(&["resume-pattern", "other-sig"]);
        let mut state = two.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        two.scan_chunk_into(&mut state, b"xx resume-pattern xx", &mut scratch, &mut out);
        assert_eq!(out.len(), 1);
        // Reassembly hole: resume at offset 100 with history masked;
        // matches entirely after the hole land at stream-absolute ends.
        FlowState::reset_at(&mut state, 100);
        assert_eq!(state.offset(), 100);
        two.scan_chunk_into(
            &mut state,
            b"-- other-sig resume-pattern --",
            &mut scratch,
            &mut out,
        );
        two.finish_flow(&mut state, &mut out);
        let tail: Vec<Match> = out[1..].to_vec();
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|m| m.end > 100));
        // Counters survive a mid-stream resume but not a slot reset.
        assert_eq!(state.stats().pre_bytes, 50);
        FlowState::reset(&mut state);
        assert_eq!(state.stats(), TwoStageStats::default());
        assert_eq!(state.offset(), 0);
    }

    #[test]
    fn profiled_build_reports_tuned_depth() {
        let set = PatternSet::new(["alpha-signature", "beta-marker", "gamma-probe"]).unwrap();
        let sample: Vec<u8> = b"clean traffic with alpha-signature planted "
            .iter()
            .copied()
            .cycle()
            .take(4096)
            .collect();
        let two =
            TwoStageMatcher::build_with_profile(&set, &TwoStageConfig::with_cores(1), &sample)
                .unwrap();
        if two.pre_kind() == "prefix-dfa" {
            assert!((2..=6).contains(&two.pre_depth()), "depth {}", two.pre_depth());
        }
        let found = two.find_all(b"zz alpha-signature beta-marker zz");
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn forced_gram_cover_with_short_lane_stays_exact() {
        // The gram + short-lane path: shorts ride the lane tables,
        // longs window through the gram cover.
        let set = PatternSet::new(["k", "qz", "wvu", "signature-long", "xylophone"]).unwrap();
        let two =
            TwoStageMatcher::build_forced_grams(&set, &TwoStageConfig::with_cores(1)).unwrap();
        assert_eq!(two.pre_kind(), "gram-table");
        assert!(format!("{two:?}").contains("short_lane: true"));
        let exact = ShardedMatcher::build(&set, &ShardedConfig::with_cores(1)).unwrap();
        let hay = b"kqz-wvukk-signature-long-xylophones-qzwvuk".to_vec();
        let whole = exact.find_all(&hay);
        assert_eq!(two.find_all(&hay), whole);
        for cut in 0..hay.len() {
            let mut state = two.flow_state();
            let mut scratch = two.scratch();
            let mut out = Vec::new();
            two.scan_chunk_into(&mut state, &hay[..cut], &mut scratch, &mut out);
            two.scan_chunk_into(&mut state, &hay[cut..], &mut scratch, &mut out);
            two.finish_flow(&mut state, &mut out);
            assert_eq!(out, whole, "cut at {cut}");
        }
    }
}
