//! Protocol-aware normalization with fail-open degradation.
//!
//! Raw-byte scanning is evadable: an attacker who splits a signature
//! across HTTP chunked-transfer boundaries, or hides it behind malformed
//! framing, defeats every engine in the stack without ever changing the
//! decoded payload. This module adds the classic IDS countermeasure — a
//! streaming protocol-detect stage plus per-protocol normalizers that
//! feed *decoded* bytes to the resumable scanner — under a strict
//! robustness contract borrowed from the reassembly layer's hole-skip:
//!
//! 1. **Fail open, never closed.** Any malformed, truncated, or
//!    ambiguous protocol state downgrades the flow to raw-byte scanning
//!    of the remainder. A parse error can reduce decode fidelity; it can
//!    never make bytes invisible to the scanner pipeline.
//! 2. **Every byte accounted.** The ledger identity
//!    `delivered_bytes == normalized_bytes + raw_bytes` holds after
//!    every [`ProtoFlow::deliver`] call — bytes are bucketed at
//!    *consumption* time, the layer holds no internal byte buffer, so
//!    there is no flush hook to forget and no eviction leak.
//! 3. **Every downgrade counted.** `malformed_downgrades`,
//!    `probe_exhausted`, `mimicry_suspected`, `desync_downgrades` and
//!    `tier_bypassed` in [`ProtocolStats`] are the evasion signature: a
//!    spike means someone is probing the parser, not that traffic is
//!    quietly going unscanned.
//!
//! # Detect ladder
//!
//! Classification confidence is a three-rung ladder:
//!
//! * **Hint** — a port-derived [`ProtoConfig::hint`] alone never
//!   activates a normalizer (ports are attacker-chosen).
//! * **Probable** — the content probe alone matched a protocol preamble
//!   (HTTP/1.x method line or `HTTP/1.` response, TLS record header).
//! * **Confirmed** — hint and content probe agree.
//!
//! Hint and probe *disagreeing* is protocol mimicry — counted
//! `mimicry_suspected`, flow degraded to raw. The probe inspects at most
//! [`PROBE_MAX`] bytes; budget exhaustion without a verdict is counted
//! `probe_exhausted` and degrades to raw. Probed bytes are scanned raw
//! *immediately* as they arrive (never buffered), then replayed into the
//! chosen parser with emission suppressed, so a flow that never
//! classifies is byte-for-byte identical to a plain raw scan.
//!
//! # Offset spaces
//!
//! While a normalizer is active, the inner scanner advances through the
//! *decoded* stream: framing metadata (chunk-size lines, chunk CRLFs,
//! TLS record headers, trailers) is consumed — and ledger-counted as
//! `normalized_bytes` — but not emitted, so match `end` offsets are
//! decoded-stream offsets. Raw flows (and flows after a downgrade) stay
//! in wire offsets. Every downgrade masks scanner history via
//! `reset_at(fed)` — exactly the reassembly hole-skip contract — so a
//! downgrade can never manufacture a match half-decoded, half-raw.
//!
//! Metadata bytes themselves are not scanned (that is what
//! normalization *means* — the decoded stream is the scan target). The
//! residual channel is narrow and documented: a signature would have to
//! be pure hex and fit inside a legal chunk-size line.
//!
//! # Scoping
//!
//! [`PatternSet`] scope tags ([`TAG_HTTP`], [`TAG_TLS`], [`TAG_ANY`])
//! compile into a [`ScopedRuleset`]: per-protocol matcher views so
//! HTTP-only rules never scan TLS ciphertext. The raw lane always scans
//! the full set. Scoped views are distinct automata, so when
//! [`ProtoConfig::scoped`] is set the lane change at classification
//! masks scanner history (`reset_at`) — a boundary-local loss of at
//! most the probe length, at flow start only.

use crate::compiled::{CompiledAutomaton, CompiledMatcher};
use crate::flow::FlowState;
use crate::lookup_table::DtpConfig;
use crate::reduce::ReducedAutomaton;
use dpi_automaton::{Dfa, Match, PatternId, PatternSet, ScanState};

/// Scope tag matching every protocol lane (the untagged default `0`).
pub const TAG_ANY: u32 = 0;
/// Scope tag for rules that only apply to decoded HTTP streams.
pub const TAG_HTTP: u32 = 1;
/// Scope tag for rules that only apply to TLS record payloads.
pub const TAG_TLS: u32 = 2;

/// Upper bound on content-probe length, in bytes. The longest preamble
/// the probe recognises is 8 bytes (`"OPTIONS "`), so any budget of 8+
/// always reaches a verdict; smaller budgets can exhaust.
pub const PROBE_MAX: usize = 16;

/// Header-section budget per HTTP message; beyond this the flow
/// degrades to raw (`malformed_downgrades`).
const HEADER_CAP_BYTES: u64 = 64 * 1024;
/// Trailer-section budget after a chunked body's last chunk.
const TRAILER_CAP_BYTES: u64 = 8 * 1024;
/// Largest chunk size the decoder accepts (16 MiB − 1); a legal hex
/// size above this is treated as hostile framing and degrades.
const MAX_CHUNK_SIZE: u64 = 0x00FF_FFFF;
/// Most hex digits a chunk-size line may carry (leading zeros
/// included). Any legal size fits in 8; a longer digit run keeps
/// `value` below the size guard while growing without bound, so it is
/// treated as hostile framing and degrades.
const MAX_CHUNK_SIZE_DIGITS: u8 = 16;
/// Longest header line kept for framing-relevant parsing. Longer lines
/// stream through verbatim and are not framing-parsed — unless the kept
/// prefix names `Content-Length`/`Transfer-Encoding`, where the
/// unparsed value could change body framing, so the flow fails open.
const LINE_CAP: usize = 96;
/// Longest TLS record body the framer accepts (RFC 8446 limit plus
/// expansion: 2^14 + 256).
const MAX_TLS_RECORD: u16 = 16640;

/// Application protocol identities the detect stage can assign.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so
/// new protocols can land without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolId {
    /// HTTP/1.x (requests or responses).
    Http,
    /// TLS record layer (any handshake/application record stream).
    Tls,
}

/// Which matcher view a slice of bytes should be scanned with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Decoded bytes from an active normalizer; scan with the scoped
    /// view for this protocol (plus the untagged rules).
    Normalized(ProtocolId),
    /// Wire bytes — probe prefix, unclassified flows, or everything
    /// after a fail-open downgrade. Always scanned with the full set.
    Raw,
}

/// Per-flow configuration of the detect/normalize stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Master switch; `false` constructs the flow directly in raw mode
    /// (zero per-byte overhead, no flow counters).
    pub enabled: bool,
    /// Port-derived protocol expectation. Never sufficient alone; a
    /// content probe that *contradicts* it is counted
    /// `mimicry_suspected` and degrades the flow to raw.
    pub hint: Option<ProtocolId>,
    /// When set, decoded bytes are scanned with per-protocol scoped
    /// views (distinct automata), so the lane change at classification
    /// masks scanner history. When clear, every lane maps to the same
    /// engine and a flow that never classifies is byte-identical to a
    /// plain raw scan.
    ///
    /// **Invariant: this flag must mirror the sink's lane mapping.**
    /// Set it if and only if the sink resolves `Lane::Normalized(..)`
    /// to the per-protocol [`ScopedRuleset::lane`] views. A sink that
    /// scans scoped views under `scoped: false` feeds `ScanState` from
    /// one automaton into a different one with no `reset_at` — bogus
    /// state indices or phantom matches on tagged rulesets (untagged
    /// sets escape only because every lane falls back to the one full
    /// automaton). Conversely, `scoped: true` over a single shared
    /// engine masks real cross-probe-boundary matches for nothing.
    pub scoped: bool,
    /// Content-probe budget in bytes, clamped to `1..=`[`PROBE_MAX`].
    /// Budgets below 8 can exhaust mid-preamble (`probe_exhausted`).
    pub probe_budget: usize,
}

impl Default for ProtoConfig {
    fn default() -> ProtoConfig {
        ProtoConfig {
            enabled: true,
            hint: None,
            scoped: false,
            probe_budget: PROBE_MAX,
        }
    }
}

/// Monotone counters for the detect/normalize stage. The hard contract
/// is the ledger identity checked by
/// [`ProtocolStats::unaccounted_bytes`]` == 0`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Total bytes handed to [`ProtoFlow::deliver`].
    pub delivered_bytes: u64,
    /// Bytes consumed by an active normalizer (emitted payload *and*
    /// framing metadata).
    pub normalized_bytes: u64,
    /// Bytes scanned on the raw lane (probe prefix, unclassified flows,
    /// post-downgrade remainders).
    pub raw_bytes: u64,
    /// Decoded bytes actually fed to the scanner by normalizers
    /// (`normalized_bytes - emitted_bytes` is framing metadata).
    pub emitted_bytes: u64,
    /// Flows classified HTTP and normalized.
    pub flows_http: u64,
    /// Flows classified TLS and normalized.
    pub flows_tls: u64,
    /// Flows resolved to raw by the probe stage (mismatch, exhaustion,
    /// or mimicry).
    pub flows_raw: u64,
    /// Fail-open downgrades due to malformed or hostile framing.
    pub malformed_downgrades: u64,
    /// Probe budget exhausted without a verdict.
    pub probe_exhausted: u64,
    /// Port hint and content probe resolved to different protocols.
    pub mimicry_suspected: u64,
    /// Downgrades forced by an out-of-band stream reset
    /// ([`FlowState::reset_at`] — reassembly hole-skip or service
    /// resync) landing mid-parse.
    pub desync_downgrades: u64,
    /// Flows forced raw by the service fidelity ladder (a flow scanned
    /// at [`FidelityTier::FlagOnly`](crate::service::FidelityTier)
    /// bypasses normalization permanently).
    pub tier_bypassed: u64,
}

impl ProtocolStats {
    /// `delivered − normalized − raw`: zero whenever the fail-open
    /// ledger holds. Property-tested to stay zero under arbitrary
    /// segment soups.
    pub fn unaccounted_bytes(&self) -> i64 {
        self.delivered_bytes as i64 - self.normalized_bytes as i64 - self.raw_bytes as i64
    }

    /// Total fail-open downgrades of every cause.
    pub fn downgrades(&self) -> u64 {
        self.malformed_downgrades
            + self.probe_exhausted
            + self.mimicry_suspected
            + self.desync_downgrades
            + self.tier_bypassed
    }

    /// Adds `other` into `self` (service aggregation across workers).
    pub fn absorb(&mut self, other: &ProtocolStats) {
        self.delivered_bytes += other.delivered_bytes;
        self.normalized_bytes += other.normalized_bytes;
        self.raw_bytes += other.raw_bytes;
        self.emitted_bytes += other.emitted_bytes;
        self.flows_http += other.flows_http;
        self.flows_tls += other.flows_tls;
        self.flows_raw += other.flows_raw;
        self.malformed_downgrades += other.malformed_downgrades;
        self.probe_exhausted += other.probe_exhausted;
        self.mimicry_suspected += other.mimicry_suspected;
        self.desync_downgrades += other.desync_downgrades;
        self.tier_bypassed += other.tier_bypassed;
    }
}

/// HTTP/1.x preambles the content probe recognises. Longest is 8
/// bytes, so a probe budget of 8+ always reaches a verdict.
const HTTP_PREAMBLES: &[&[u8]] = &[
    b"GET ",
    b"PUT ",
    b"POST ",
    b"HEAD ",
    b"OPTIONS ",
    b"DELETE ",
    b"TRACE ",
    b"CONNECT ",
    b"PATCH ",
    b"HTTP/1.",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeVerdict {
    NeedMore,
    Http,
    Tls,
    Raw,
}

/// Evaluates the content probe over the first `buf` bytes of a flow.
fn probe_verdict(buf: &[u8]) -> ProbeVerdict {
    debug_assert!(!buf.is_empty());
    // TLS: record type 0x16 (handshake), version major 0x03, any minor
    // a real stack emits (SSL3.0 through the TLS1.3 compat value).
    if buf[0] == 0x16 {
        if buf.len() < 2 || (buf[1] == 0x03 && buf.len() < 3) {
            return ProbeVerdict::NeedMore;
        }
        if buf[1] == 0x03 && buf[2] <= 0x04 {
            return ProbeVerdict::Tls;
        }
        return ProbeVerdict::Raw;
    }
    let mut partial = false;
    for token in HTTP_PREAMBLES {
        if buf.len() >= token.len() {
            if &buf[..token.len()] == *token {
                return ProbeVerdict::Http;
            }
        } else if token.starts_with(buf) {
            partial = true;
        }
    }
    if partial {
        ProbeVerdict::NeedMore
    } else {
        ProbeVerdict::Raw
    }
}

/// Streaming HTTP/1.x normalizer: header/body split, chunked-transfer
/// decoding tolerant of CRLFs and chunk-size lines cut anywhere,
/// obs-fold continuation stitching. Emits start-line + headers verbatim
/// and body bytes decoded; never buffers payload (the chunk-size parser
/// is a hex accumulator, the current header line is copied — capped —
/// only for framing-relevant parsing).
#[derive(Debug, Clone)]
struct HttpParser {
    state: HttpState,
    /// Prefix of the current header line (≤ [`LINE_CAP`]), for framing
    /// parsing only — payload streams through without this copy.
    line: Vec<u8>,
    /// Full length of the current header line (may exceed the copy).
    line_len: usize,
    /// Header CRLF held back until the next byte decides obs-fold.
    pending_crlf: bool,
    first_line: bool,
    is_response: bool,
    content_length: Option<u64>,
    chunked: bool,
    header_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HttpState {
    /// Inside a header line (start-line included).
    HeaderByte,
    /// Saw CR inside the header section; strict grammar demands LF.
    HeaderCr,
    /// Fixed-length or read-to-end body; `u64::MAX` means until close.
    Body { remaining: u64 },
    /// Accumulating a hex chunk size.
    ChunkSize { value: u64, digits: u8 },
    /// Saw the CR ending a chunk-size line; carries the parsed size.
    ChunkSizeCr { value: u64 },
    /// Inside a chunk body.
    ChunkBody { remaining: u64 },
    /// Expecting the CR of the CRLF that closes a chunk body.
    ChunkEndCr,
    /// Expecting the LF of the CRLF that closes a chunk body.
    ChunkEndLf,
    /// Consuming trailer lines after the last chunk (pure metadata).
    Trailer { total: u64, line_len: u64, seen_cr: bool },
}

impl HttpParser {
    fn new() -> HttpParser {
        HttpParser {
            state: HttpState::HeaderByte,
            line: Vec::with_capacity(LINE_CAP),
            line_len: 0,
            pending_crlf: false,
            first_line: true,
            is_response: false,
            content_length: None,
            chunked: false,
            header_bytes: 0,
        }
    }

    fn push_line_byte(&mut self, b: u8) {
        if self.line.len() < LINE_CAP {
            self.line.push(b);
        }
        self.line_len += 1;
    }

    /// Framing-parses the completed header line. `Err(())` = hostile
    /// or ambiguous framing → fail open.
    fn end_line(&mut self) -> Result<(), ()> {
        if self.first_line {
            self.first_line = false;
            self.is_response = self.line.starts_with(b"HTTP/");
        } else if self.line.len() != self.line_len {
            // The line outgrew the copy. Its bytes still streamed to
            // the scanner, but its value cannot be framing-parsed — and
            // if the kept prefix names a framing header (an attacker
            // can pad `Content-Length:` with OWS past the cap), quietly
            // skipping it would desync the normalizer from the
            // endpoint's framing: fail open instead.
            if starts_with_ci(&self.line, b"content-length")
                || starts_with_ci(&self.line, b"transfer-encoding")
            {
                return Err(());
            }
        } else if let Some(colon) = self.line.iter().position(|&b| b == b':') {
            let (name, value) = self.line.split_at(colon);
            let value = &value[1..];
            if name.eq_ignore_ascii_case(b"content-length") {
                if self.content_length.is_some() {
                    // Duplicate Content-Length is the classic
                    // request-smuggling pivot: ambiguous framing.
                    return Err(());
                }
                self.content_length = Some(parse_decimal(value).ok_or(())?);
            } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
                // Comma-separated coding list. The body is chunked-
                // framed only when `chunked` is the sole coding;
                // anything else — stacked codings, codings we cannot
                // decode, or substring imposters like `xchunked` that
                // endpoints frame differently — means the body cannot
                // be framed at all: fail open.
                let mut codings = value.split(|&b| b == b',').map(trim_ows);
                let sole_is_chunked = codings
                    .next()
                    .map_or(false, |t| t.eq_ignore_ascii_case(b"chunked"));
                if !sole_is_chunked || codings.next().is_some() {
                    return Err(());
                }
                self.chunked = true;
            }
        }
        self.line.clear();
        self.line_len = 0;
        Ok(())
    }

    /// Transitions out of the header section at the blank line.
    fn end_headers(&mut self) -> Result<(), ()> {
        if self.chunked && self.content_length.is_some() {
            // CL + TE together is ambiguous framing (smuggling).
            return Err(());
        }
        if self.chunked {
            self.state = HttpState::ChunkSize { value: 0, digits: 0 };
        } else if let Some(n) = self.content_length {
            if n == 0 {
                self.next_message();
            } else {
                self.state = HttpState::Body { remaining: n };
            }
        } else if self.is_response {
            // Response without framing: body runs to connection close.
            self.state = HttpState::Body { remaining: u64::MAX };
        } else {
            // Request without framing has no body (keep-alive).
            self.next_message();
        }
        Ok(())
    }

    fn next_message(&mut self) {
        self.state = HttpState::HeaderByte;
        self.first_line = true;
        self.is_response = false;
        self.content_length = None;
        self.chunked = false;
        self.header_bytes = 0;
        self.line.clear();
        self.line_len = 0;
        self.pending_crlf = false;
    }

    /// Feeds `data`, emitting decoded bytes through `emit`.
    /// `Err(consumed)`: hostile/malformed framing at `data[consumed]`;
    /// the caller fails open and scans `data[consumed..]` raw.
    fn feed(&mut self, data: &[u8], emit: &mut dyn FnMut(&[u8])) -> Result<(), usize> {
        let mut i = 0usize;
        while i < data.len() {
            match self.state {
                HttpState::HeaderByte => {
                    let b = data[i];
                    if self.pending_crlf {
                        self.pending_crlf = false;
                        if b == b' ' || b == b'\t' {
                            // obs-fold: the held CRLF is metadata; the
                            // continuation byte stitches the line.
                            self.header_bytes += 1;
                            if self.header_bytes > HEADER_CAP_BYTES {
                                return Err(i);
                            }
                            emit(&data[i..=i]);
                            self.push_line_byte(b);
                            i += 1;
                            continue;
                        }
                        // Not a fold: release the held CRLF and close
                        // the line it terminated.
                        emit(b"\r\n");
                        if self.end_line().is_err() {
                            return Err(i);
                        }
                    }
                    if b == b'\0' || b == b'\n' {
                        // NUL in headers / bare LF: hostile framing.
                        return Err(i);
                    }
                    if b == b'\r' {
                        self.state = HttpState::HeaderCr;
                        self.header_bytes += 1;
                        // Held back for the fold decision; emitted (or
                        // voided) when the byte after LF arrives.
                        i += 1;
                        continue;
                    }
                    // Bulk path: run to the next structural byte.
                    let run_end = data[i..]
                        .iter()
                        .position(|&c| c == b'\r' || c == b'\n' || c == b'\0')
                        .map_or(data.len(), |p| i + p);
                    let run = &data[i..run_end];
                    self.header_bytes += run.len() as u64;
                    if self.header_bytes > HEADER_CAP_BYTES {
                        return Err(i);
                    }
                    emit(run);
                    for &c in run {
                        self.push_line_byte(c);
                    }
                    i = run_end;
                }
                HttpState::HeaderCr => {
                    if data[i] != b'\n' {
                        return Err(i);
                    }
                    self.header_bytes += 1;
                    if self.header_bytes > HEADER_CAP_BYTES {
                        return Err(i);
                    }
                    i += 1;
                    if self.line_len == 0 {
                        // Blank line: end of header section. Its CRLF
                        // is part of the verbatim header emission.
                        emit(b"\r\n");
                        if self.end_headers().is_err() {
                            return Err(i);
                        }
                    } else {
                        self.state = HttpState::HeaderByte;
                        self.pending_crlf = true;
                    }
                }
                HttpState::Body { remaining } => {
                    let avail = data.len() - i;
                    let take = if remaining == u64::MAX {
                        avail
                    } else {
                        avail.min(remaining as usize)
                    };
                    emit(&data[i..i + take]);
                    i += take;
                    if remaining != u64::MAX {
                        let left = remaining - take as u64;
                        if left == 0 {
                            self.next_message();
                        } else {
                            self.state = HttpState::Body { remaining: left };
                        }
                    }
                }
                HttpState::ChunkSize { value, digits } => {
                    let b = data[i];
                    if let Some(d) = hex_digit(b) {
                        if digits >= MAX_CHUNK_SIZE_DIGITS {
                            // Any legal size fits in 8 hex digits given
                            // MAX_CHUNK_SIZE; a longer run (e.g. hundreds
                            // of leading zeros, which keep `value` at 0
                            // and so never trip the size guard) is
                            // hostile padding — and would overflow the
                            // digit counter if left unbounded.
                            return Err(i);
                        }
                        let v = value * 16 + d as u64;
                        if v > MAX_CHUNK_SIZE {
                            return Err(i);
                        }
                        self.state = HttpState::ChunkSize {
                            value: v,
                            digits: digits + 1,
                        };
                        i += 1;
                    } else if b == b'\r' {
                        if digits == 0 {
                            return Err(i);
                        }
                        self.state = HttpState::ChunkSizeCr { value };
                        i += 1;
                    } else {
                        // Extensions, bare LF, or garbage: strict
                        // grammar, fail open.
                        return Err(i);
                    }
                }
                HttpState::ChunkSizeCr { value } => {
                    if data[i] != b'\n' {
                        return Err(i);
                    }
                    i += 1;
                    self.state = if value == 0 {
                        HttpState::Trailer {
                            total: 0,
                            line_len: 0,
                            seen_cr: false,
                        }
                    } else {
                        HttpState::ChunkBody { remaining: value }
                    };
                }
                HttpState::ChunkBody { remaining } => {
                    let avail = data.len() - i;
                    let take = avail.min(remaining as usize);
                    emit(&data[i..i + take]);
                    i += take;
                    let left = remaining - take as u64;
                    if left == 0 {
                        self.state = HttpState::ChunkEndCr;
                    } else {
                        self.state = HttpState::ChunkBody { remaining: left };
                    }
                }
                HttpState::ChunkEndCr => {
                    if data[i] != b'\r' {
                        return Err(i);
                    }
                    self.state = HttpState::ChunkEndLf;
                    i += 1;
                }
                HttpState::ChunkEndLf => {
                    if data[i] != b'\n' {
                        return Err(i);
                    }
                    self.state = HttpState::ChunkSize { value: 0, digits: 0 };
                    i += 1;
                }
                HttpState::Trailer {
                    total,
                    line_len,
                    seen_cr,
                } => {
                    let b = data[i];
                    let total = total + 1;
                    if total > TRAILER_CAP_BYTES {
                        return Err(i);
                    }
                    if seen_cr {
                        if b != b'\n' {
                            return Err(i);
                        }
                        i += 1;
                        if line_len == 0 {
                            self.next_message();
                        } else {
                            self.state = HttpState::Trailer {
                                total,
                                line_len: 0,
                                seen_cr: false,
                            };
                        }
                    } else if b == b'\r' {
                        self.state = HttpState::Trailer {
                            total,
                            line_len,
                            seen_cr: true,
                        };
                        i += 1;
                    } else if b == b'\n' || b == b'\0' {
                        return Err(i);
                    } else {
                        self.state = HttpState::Trailer {
                            total,
                            line_len: line_len + 1,
                            seen_cr: false,
                        };
                        i += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parses `b"123"`-style decimal with optional surrounding SP/HT.
fn parse_decimal(raw: &[u8]) -> Option<u64> {
    let trimmed = trim_ows(raw);
    if trimmed.is_empty() || trimmed.len() > 18 {
        return None;
    }
    let mut value = 0u64;
    for &b in trimmed {
        if !b.is_ascii_digit() {
            return None;
        }
        value = value * 10 + (b - b'0') as u64;
    }
    Some(value)
}

fn hex_digit(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Strips optional whitespace (SP/HT) from both ends.
fn trim_ows(raw: &[u8]) -> &[u8] {
    match raw.iter().position(|&b| b != b' ' && b != b'\t') {
        Some(start) => {
            let end = raw.iter().rposition(|&b| b != b' ' && b != b'\t').unwrap();
            &raw[start..=end]
        }
        None => &[],
    }
}

fn starts_with_ci(haystack: &[u8], prefix: &[u8]) -> bool {
    haystack.len() >= prefix.len() && haystack[..prefix.len()].eq_ignore_ascii_case(prefix)
}

/// Streaming TLS record framer: 5-byte record headers are metadata,
/// record bodies are emitted verbatim. The value of normalization here
/// is scoping — HTTP-only rules never scan ciphertext — plus hostile
/// framing detection.
#[derive(Debug, Clone)]
struct TlsParser {
    state: TlsState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TlsState {
    Header { buf: [u8; 5], len: u8 },
    Body { remaining: u16 },
}

impl TlsParser {
    fn new() -> TlsParser {
        TlsParser {
            state: TlsState::Header {
                buf: [0; 5],
                len: 0,
            },
        }
    }

    fn feed(&mut self, data: &[u8], emit: &mut dyn FnMut(&[u8])) -> Result<(), usize> {
        let mut i = 0usize;
        while i < data.len() {
            match self.state {
                TlsState::Header { mut buf, len } => {
                    let b = data[i];
                    // Validate each header byte as it arrives so bad
                    // framing fails open with minimal metadata loss.
                    let ok = match len {
                        0 => (0x14..=0x18).contains(&b),
                        1 => b == 0x03,
                        2 => b <= 0x04,
                        3 => true,
                        _ => u16::from_be_bytes([buf[3], b]) <= MAX_TLS_RECORD,
                    };
                    if !ok {
                        return Err(i);
                    }
                    buf[len as usize] = b;
                    i += 1;
                    if len == 4 {
                        let remaining = u16::from_be_bytes([buf[3], buf[4]]);
                        self.state = if remaining == 0 {
                            TlsState::Header {
                                buf: [0; 5],
                                len: 0,
                            }
                        } else {
                            TlsState::Body { remaining }
                        };
                    } else {
                        self.state = TlsState::Header { buf, len: len + 1 };
                    }
                }
                TlsState::Body { remaining } => {
                    let avail = data.len() - i;
                    let take = avail.min(remaining as usize);
                    emit(&data[i..i + take]);
                    i += take;
                    let left = remaining - take as u16;
                    self.state = if left == 0 {
                        TlsState::Header {
                            buf: [0; 5],
                            len: 0,
                        }
                    } else {
                        TlsState::Body { remaining: left }
                    };
                }
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Mode {
    Probe { buf: [u8; PROBE_MAX], len: u8 },
    Http(HttpParser),
    Tls(TlsParser),
    Raw,
}

/// The non-generic guts of a [`ProtoFlow`].
#[derive(Debug, Clone)]
pub struct ProtoState {
    config: ProtoConfig,
    mode: Mode,
    /// Set by [`FlowState::reset_at`]; consumed by the next deliver as
    /// a `desync_downgrades` transition to raw.
    desync_pending: bool,
    /// Mirror of the inner scanner's stream offset: advanced by every
    /// byte fed to the sink, overwritten by `reset_at`. Downgrade
    /// resets target this, keeping reset offsets monotone.
    fed: u64,
}

impl ProtoState {
    fn new(config: ProtoConfig) -> ProtoState {
        ProtoState {
            config,
            mode: ProtoState::fresh_mode(&config),
            desync_pending: false,
            fed: 0,
        }
    }

    fn fresh_mode(config: &ProtoConfig) -> Mode {
        if config.enabled {
            Mode::Probe {
                buf: [0; PROBE_MAX],
                len: 0,
            }
        } else {
            Mode::Raw
        }
    }
}

/// A per-flow detect/normalize stage wrapped around any resumable
/// scanner state `S`. Compose inside
/// [`StreamFlow`](crate::reassembly::StreamFlow) for the full pipeline:
/// reassemble → detect/normalize → scan.
///
/// ```
/// use dpi_automaton::PatternSet;
/// use dpi_core::protocol::{Lane, ProtoConfig, ProtoFlow, ProtocolStats, ScopedRuleset};
/// use dpi_automaton::ScanState;
///
/// let set = PatternSet::new(["attack"])?;
/// let rules = ScopedRuleset::build(&set);
/// let lane = rules.lane(Lane::Raw);
/// let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
/// let mut stats = ProtocolStats::default();
/// let mut out = Vec::new();
/// flow.deliver(
///     b"GET /x HTTP/1.1\r\nContent-Length: 6\r\n\r\nattack",
///     false,
///     &mut stats,
///     |_, scan, bytes, out| lane.scan_chunk_into(scan, bytes, out),
///     &mut out,
/// );
/// assert_eq!(out.len(), 1);
/// assert_eq!(stats.unaccounted_bytes(), 0);
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProtoFlow<S> {
    /// The wrapped scanner state (public, like
    /// [`StreamFlow::scan`](crate::reassembly::StreamFlow)).
    pub scan: S,
    /// Detect/normalize state.
    pub state: ProtoState,
}

impl<S: FlowState> ProtoFlow<S> {
    /// Wraps scanner state `scan` in a fresh detect stage.
    pub fn new(scan: S, config: ProtoConfig) -> ProtoFlow<S> {
        ProtoFlow {
            scan,
            state: ProtoState::new(config),
        }
    }

    /// The lane this flow currently feeds the scanner from.
    pub fn lane(&self) -> Lane {
        match self.state.mode {
            Mode::Http(_) => Lane::Normalized(ProtocolId::Http),
            Mode::Tls(_) => Lane::Normalized(ProtocolId::Tls),
            Mode::Probe { .. } | Mode::Raw => Lane::Raw,
        }
    }

    /// `true` once the flow has degraded (or been configured) to plain
    /// raw scanning.
    pub fn is_raw(&self) -> bool {
        matches!(self.state.mode, Mode::Raw)
    }

    /// Delivers in-order stream bytes through detect → normalize →
    /// `sink`. `bypass` is the fidelity-ladder hatch: `true` forces the
    /// flow to raw permanently (counted `tier_bypassed` on the
    /// transition).
    ///
    /// The sink is invoked with contiguous byte slices and the lane
    /// they belong to; it must scan them with a resumable matcher. The
    /// ledger identity `delivered == normalized + raw` holds on return
    /// — bytes are bucketed when consumed, the stage buffers nothing.
    pub fn deliver<F>(
        &mut self,
        chunk: &[u8],
        bypass: bool,
        stats: &mut ProtocolStats,
        mut sink: F,
        out: &mut Vec<Match>,
    ) where
        F: FnMut(Lane, &mut S, &[u8], &mut Vec<Match>),
    {
        let ProtoFlow { scan, state } = self;
        stats.delivered_bytes += chunk.len() as u64;

        if state.desync_pending {
            state.desync_pending = false;
            if !matches!(state.mode, Mode::Raw) {
                // An out-of-band reset (hole-skip or service resync)
                // landed mid-parse: protocol state no longer matches
                // the byte stream. Fail open.
                stats.desync_downgrades += 1;
                state.mode = Mode::Raw;
            }
        }
        if bypass && !matches!(state.mode, Mode::Raw) {
            stats.tier_bypassed += 1;
            if matches!(state.mode, Mode::Http(_) | Mode::Tls(_)) {
                // The scanner was mid-decoded-stream; mask history
                // before switching it to wire bytes.
                scan.reset_at(state.fed);
            }
            state.mode = Mode::Raw;
        }

        let mut rest = chunk;
        while !rest.is_empty() {
            match std::mem::replace(&mut state.mode, Mode::Raw) {
                Mode::Raw => {
                    stats.raw_bytes += rest.len() as u64;
                    state.fed += rest.len() as u64;
                    sink(Lane::Raw, scan, rest, out);
                    rest = &[];
                }
                Mode::Probe { mut buf, mut len } => {
                    let budget = state.config.probe_budget.clamp(1, PROBE_MAX);
                    let mut taken = 0usize;
                    let mut verdict = None;
                    while taken < rest.len() && verdict.is_none() {
                        buf[len as usize] = rest[taken];
                        len += 1;
                        taken += 1;
                        match probe_verdict(&buf[..len as usize]) {
                            ProbeVerdict::NeedMore => {
                                if (len as usize) >= budget {
                                    verdict = Some(ProbeVerdict::NeedMore);
                                }
                            }
                            v => verdict = Some(v),
                        }
                    }
                    // Probe bytes are scanned raw the moment they
                    // arrive — never buffered away from the scanner.
                    stats.raw_bytes += taken as u64;
                    state.fed += taken as u64;
                    sink(Lane::Raw, scan, &rest[..taken], out);
                    rest = &rest[taken..];
                    state.mode = match verdict {
                        None => Mode::Probe { buf, len },
                        Some(ProbeVerdict::NeedMore) => {
                            stats.probe_exhausted += 1;
                            stats.flows_raw += 1;
                            Mode::Raw
                        }
                        Some(ProbeVerdict::Raw) => {
                            stats.flows_raw += 1;
                            Mode::Raw
                        }
                        Some(content) => {
                            let proto = if content == ProbeVerdict::Http {
                                ProtocolId::Http
                            } else {
                                ProtocolId::Tls
                            };
                            match state.config.hint {
                                Some(hint) if hint != proto => {
                                    // The port promised one protocol,
                                    // the bytes speak another.
                                    stats.mimicry_suspected += 1;
                                    stats.flows_raw += 1;
                                    Mode::Raw
                                }
                                _ => {
                                    if state.config.scoped {
                                        // Scoped views are distinct
                                        // automata; mask history at the
                                        // lane change.
                                        scan.reset_at(state.fed);
                                    }
                                    // Replay the already-raw-scanned
                                    // probe prefix to bring the parser
                                    // up to date, emission suppressed.
                                    let replay = &buf[..len as usize];
                                    let mut void = |_: &[u8]| {};
                                    let (mode, replay_ok) = match proto {
                                        ProtocolId::Http => {
                                            let mut p = HttpParser::new();
                                            let ok = p.feed(replay, &mut void).is_ok();
                                            (Mode::Http(p), ok)
                                        }
                                        ProtocolId::Tls => {
                                            let mut p = TlsParser::new();
                                            let ok = p.feed(replay, &mut void).is_ok();
                                            (Mode::Tls(p), ok)
                                        }
                                    };
                                    if !replay_ok {
                                        stats.malformed_downgrades += 1;
                                        stats.flows_raw += 1;
                                        Mode::Raw
                                    } else {
                                        match proto {
                                            ProtocolId::Http => stats.flows_http += 1,
                                            ProtocolId::Tls => stats.flows_tls += 1,
                                        }
                                        mode
                                    }
                                }
                            }
                        }
                    };
                }
                Mode::Http(mut parser) => {
                    let result = {
                        let fed = &mut state.fed;
                        let mut emit = |slice: &[u8]| {
                            *fed += slice.len() as u64;
                            stats.emitted_bytes += slice.len() as u64;
                            sink(Lane::Normalized(ProtocolId::Http), scan, slice, out);
                        };
                        parser.feed(rest, &mut emit)
                    };
                    match result {
                        Ok(()) => {
                            stats.normalized_bytes += rest.len() as u64;
                            state.mode = Mode::Http(parser);
                            rest = &[];
                        }
                        Err(consumed) => {
                            stats.normalized_bytes += consumed as u64;
                            stats.malformed_downgrades += 1;
                            scan.reset_at(state.fed);
                            state.mode = Mode::Raw;
                            rest = &rest[consumed..];
                        }
                    }
                }
                Mode::Tls(mut parser) => {
                    let result = {
                        let fed = &mut state.fed;
                        let mut emit = |slice: &[u8]| {
                            *fed += slice.len() as u64;
                            stats.emitted_bytes += slice.len() as u64;
                            sink(Lane::Normalized(ProtocolId::Tls), scan, slice, out);
                        };
                        parser.feed(rest, &mut emit)
                    };
                    match result {
                        Ok(()) => {
                            stats.normalized_bytes += rest.len() as u64;
                            state.mode = Mode::Tls(parser);
                            rest = &[];
                        }
                        Err(consumed) => {
                            stats.normalized_bytes += consumed as u64;
                            stats.malformed_downgrades += 1;
                            scan.reset_at(state.fed);
                            state.mode = Mode::Raw;
                            rest = &rest[consumed..];
                        }
                    }
                }
            }
        }
    }
}

impl<S: FlowState> FlowState for ProtoFlow<S> {
    fn reset(&mut self) {
        self.scan.reset();
        self.state.mode = ProtoState::fresh_mode(&self.state.config);
        self.state.desync_pending = false;
        self.state.fed = 0;
    }

    fn reset_at(&mut self, offset: u64) {
        self.scan.reset_at(offset);
        self.state.fed = offset;
        if !matches!(self.state.mode, Mode::Raw) {
            // Counted (and acted on) at the next deliver — this hook
            // has no stats access.
            self.state.desync_pending = true;
        }
    }

    fn held_bytes(&self) -> usize {
        // The detect/normalize stage buffers no payload bytes (the
        // probe copy is scanned raw before it is copied); only the
        // inner state contributes to the table's bytes_held gauge.
        self.scan.held_bytes()
    }
}

/// A matcher view for one [`Lane`]: scans with the lane's automaton and
/// remaps match pattern ids back into the master set's id space.
pub struct LaneMatcher<'a> {
    matcher: CompiledMatcher<'a>,
    remap: Option<&'a [PatternId]>,
}

impl LaneMatcher<'_> {
    /// Resumable chunk scan; appended matches carry master-set ids.
    pub fn scan_chunk_into(&self, state: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>) {
        let start = out.len();
        self.matcher.scan_chunk_into(state, chunk, out);
        if let Some(map) = self.remap {
            for m in &mut out[start..] {
                m.pattern = map[m.pattern.index()];
            }
        }
    }

    /// Whole-payload scan; appended matches carry master-set ids.
    pub fn scan_into(&self, payload: &[u8], out: &mut Vec<Match>) {
        let start = out.len();
        self.matcher.scan_into(payload, out);
        if let Some(map) = self.remap {
            for m in &mut out[start..] {
                m.pattern = map[m.pattern.index()];
            }
        }
    }

    /// The underlying matcher (e.g. to toggle SIMD or prefetch).
    pub fn matcher(&self) -> &CompiledMatcher<'_> {
        &self.matcher
    }
}

struct ScopedView {
    set: PatternSet,
    automaton: CompiledAutomaton,
    ids: Vec<PatternId>,
}

/// Owned master ruleset plus per-protocol scoped views compiled from
/// [`PatternSet`] scope tags: the view for [`ProtocolId::Http`] holds
/// the [`TAG_HTTP`] + [`TAG_ANY`] patterns, the [`ProtocolId::Tls`]
/// view the [`TAG_TLS`] + [`TAG_ANY`] ones. [`Lane::Raw`] always scans
/// the full set. Views are separate automata — smaller state machines
/// per lane is the point (scoping compounds with sharding and the
/// two-stage scan) — so matcher state cannot migrate between lanes
/// without a `reset_at`.
pub struct ScopedRuleset {
    set: PatternSet,
    automaton: CompiledAutomaton,
    http: Option<ScopedView>,
    tls: Option<ScopedView>,
}

impl ScopedRuleset {
    /// Compiles the master set and its per-protocol views. A protocol
    /// with no matching patterns gets no view; its lane falls back to
    /// the full set.
    pub fn build(set: &PatternSet) -> ScopedRuleset {
        let automaton = compile_set(set);
        let view = |want: u32| {
            set.subset_where(|_, tag| tag == TAG_ANY || tag == want)
                .map(|(sub, ids)| {
                    let automaton = compile_set(&sub);
                    ScopedView {
                        set: sub,
                        automaton,
                        ids,
                    }
                })
        };
        ScopedRuleset {
            automaton,
            http: view(TAG_HTTP),
            tls: view(TAG_TLS),
            set: set.clone(),
        }
    }

    /// The master pattern set.
    pub fn set(&self) -> &PatternSet {
        &self.set
    }

    /// Number of patterns the given lane's view scans with.
    pub fn lane_len(&self, lane: Lane) -> usize {
        match lane {
            Lane::Normalized(ProtocolId::Http) => {
                self.http.as_ref().map_or(self.set.len(), |v| v.set.len())
            }
            Lane::Normalized(ProtocolId::Tls) => {
                self.tls.as_ref().map_or(self.set.len(), |v| v.set.len())
            }
            _ => self.set.len(),
        }
    }

    /// Builds the matcher view for `lane`. Building is cheap (a fold
    /// table); for per-chunk sinks, prebuild one per lane and reuse.
    ///
    /// Views are **distinct automata**: a [`ProtoFlow`] sink that maps
    /// lanes through this method must run with
    /// [`ProtoConfig::scoped`]` = true` so scanner history is masked at
    /// every lane change — see the invariant documented there.
    pub fn lane(&self, lane: Lane) -> LaneMatcher<'_> {
        let view = match lane {
            Lane::Normalized(ProtocolId::Http) => self.http.as_ref(),
            Lane::Normalized(ProtocolId::Tls) => self.tls.as_ref(),
            _ => None,
        };
        match view {
            Some(v) => LaneMatcher {
                matcher: CompiledMatcher::new(&v.automaton, &v.set),
                remap: Some(&v.ids),
            },
            None => LaneMatcher {
                matcher: CompiledMatcher::new(&self.automaton, &self.set),
                remap: None,
            },
        }
    }
}

fn compile_set(set: &PatternSet) -> CompiledAutomaton {
    let dfa = Dfa::build(set);
    let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::default());
    CompiledAutomaton::compile(&reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::ScanState;

    fn raw_pipeline(set: &PatternSet, config: ProtoConfig, chunks: &[&[u8]]) -> (Vec<Match>, ProtocolStats) {
        // The sink below maps lanes to the distinct scoped views, so
        // the flow must run scoped (see the ProtoConfig::scoped
        // invariant) — scanner history is masked at lane changes.
        let config = ProtoConfig {
            scoped: true,
            ..config
        };
        let rules = ScopedRuleset::build(set);
        let full = rules.lane(Lane::Raw);
        let http = rules.lane(Lane::Normalized(ProtocolId::Http));
        let tls = rules.lane(Lane::Normalized(ProtocolId::Tls));
        let mut flow = ProtoFlow::new(ScanState::fresh(), config);
        let mut stats = ProtocolStats::default();
        let mut out = Vec::new();
        for chunk in chunks {
            flow.deliver(
                chunk,
                false,
                &mut stats,
                |lane, scan: &mut ScanState, bytes, out| match lane {
                    Lane::Raw => full.scan_chunk_into(scan, bytes, out),
                    Lane::Normalized(ProtocolId::Http) => http.scan_chunk_into(scan, bytes, out),
                    Lane::Normalized(ProtocolId::Tls) => tls.scan_chunk_into(scan, bytes, out),
                },
                &mut out,
            );
        }
        assert_eq!(stats.unaccounted_bytes(), 0, "ledger must balance");
        (out, stats)
    }

    fn decode_http(chunks: &[&[u8]]) -> (Vec<u8>, ProtocolStats) {
        let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
        let mut stats = ProtocolStats::default();
        let mut out = Vec::new();
        let mut decoded = Vec::new();
        for chunk in chunks {
            flow.deliver(
                chunk,
                false,
                &mut stats,
                |lane, _scan, bytes, _out| {
                    if matches!(lane, Lane::Normalized(ProtocolId::Http)) {
                        decoded.extend_from_slice(bytes);
                    }
                },
                &mut out,
            );
        }
        assert_eq!(stats.unaccounted_bytes(), 0);
        (decoded, stats)
    }

    #[test]
    fn probe_classifies_http_and_tls() {
        assert_eq!(probe_verdict(b"G"), ProbeVerdict::NeedMore);
        assert_eq!(probe_verdict(b"GET "), ProbeVerdict::Http);
        assert_eq!(probe_verdict(b"OPTIONS "), ProbeVerdict::Http);
        assert_eq!(probe_verdict(b"HTTP/1."), ProbeVerdict::Http);
        assert_eq!(probe_verdict(b"GEX"), ProbeVerdict::Raw);
        assert_eq!(probe_verdict(&[0x16]), ProbeVerdict::NeedMore);
        assert_eq!(probe_verdict(&[0x16, 0x03, 0x01]), ProbeVerdict::Tls);
        assert_eq!(probe_verdict(&[0x16, 0x02, 0x01]), ProbeVerdict::Raw);
        assert_eq!(probe_verdict(&[0x17, 0x03, 0x03]), ProbeVerdict::Raw);
    }

    #[test]
    fn chunked_split_signature_found_normalized_missed_raw() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        // "attack-sig" split across two chunk bodies.
        let wire = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                     6\r\nattack\r\n4\r\n-sig\r\n0\r\n\r\n";
        let (normalized, stats) =
            raw_pipeline(&set, ProtoConfig::default(), &[wire.as_slice()]);
        assert_eq!(normalized.len(), 1, "normalized scan must catch the split");
        assert_eq!(stats.flows_http, 1);
        assert_eq!(stats.malformed_downgrades, 0);

        let disabled = ProtoConfig {
            enabled: false,
            ..ProtoConfig::default()
        };
        let (raw, _) = raw_pipeline(&set, disabled, &[wire.as_slice()]);
        assert!(raw.is_empty(), "raw scan must miss the split signature");
    }

    #[test]
    fn chunked_decode_tolerates_any_cut() {
        let wire: &[u8] = b"PUT /v HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                            3\r\nabc\r\nA\r\n0123456789\r\n0\r\n\r\n";
        let whole = decode_http(&[wire]).0;
        assert!(whole.ends_with(b"abc0123456789"));
        for cut in 1..wire.len() {
            let (a, b) = wire.split_at(cut);
            let (split, stats) = decode_http(&[a, b]);
            assert_eq!(split, whole, "cut at {cut} changed the decode");
            assert_eq!(stats.malformed_downgrades, 0);
        }
    }

    #[test]
    fn header_fold_is_stitched() {
        let wire: &[u8] =
            b"GET / HTTP/1.1\r\nX-Long: part-a\r\n part-b\r\nContent-Length: 2\r\n\r\nok";
        let (decoded, stats) = decode_http(&[wire]);
        let text = String::from_utf8_lossy(&decoded);
        assert!(text.contains("part-a part-b"), "fold not stitched: {text}");
        assert_eq!(stats.malformed_downgrades, 0);
        assert!(decoded.ends_with(b"ok"));
    }

    #[test]
    fn content_length_message_is_emitted_verbatim() {
        let wire: &[u8] = b"GET /a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
        let mut stats = ProtocolStats::default();
        let mut out = Vec::new();
        let mut fed = Vec::new();
        flow.deliver(
            wire,
            false,
            &mut stats,
            |_, _, bytes, _| fed.extend_from_slice(bytes),
            &mut out,
        );
        // Probe prefix goes raw, rest normalized; together they are the
        // wire stream byte-for-byte (headers verbatim, CL body verbatim).
        assert_eq!(fed, wire);
        assert_eq!(stats.unaccounted_bytes(), 0);
        assert_eq!(stats.normalized_bytes + stats.raw_bytes, wire.len() as u64);
    }

    #[test]
    fn malformed_chunk_size_fails_open() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        // Chunk size line is garbage; the signature sits after it and
        // must still be found by the raw fallback.
        let wire = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\nattack-sig";
        let (matches, stats) = raw_pipeline(&set, ProtoConfig::default(), &[wire.as_slice()]);
        assert_eq!(stats.malformed_downgrades, 1);
        assert_eq!(matches.len(), 1, "raw fallback must still scan the remainder");
    }

    #[test]
    fn chunk_size_leading_zero_flood_fails_open_without_panic() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        // Hundreds of leading-zero hex digits keep `value` at 0, so
        // only the digit-count guard can stop the line (an unbounded
        // u8 counter would overflow here).
        let mut wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        wire.extend(std::iter::repeat(b'0').take(300));
        wire.extend_from_slice(b"5\r\nattack-sig");
        let (matches, stats) = raw_pipeline(&set, ProtoConfig::default(), &[&wire]);
        assert_eq!(stats.malformed_downgrades, 1);
        assert_eq!(matches.len(), 1, "raw fallback must still scan the remainder");
    }

    #[test]
    fn chunk_size_leading_zeros_within_cap_decode() {
        let wire: &[u8] =
            b"PUT / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0003\r\nabc\r\n0\r\n\r\n";
        let (decoded, stats) = decode_http(&[wire]);
        assert!(decoded.ends_with(b"abc"));
        assert_eq!(stats.malformed_downgrades, 0);
    }

    #[test]
    fn transfer_encoding_imposters_fail_open() {
        for wire in [
            b"POST / HTTP/1.1\r\nTransfer-Encoding: xchunked\r\n\r\nx".as_slice(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunkedd\r\n\r\nx".as_slice(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\nx".as_slice(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked, gzip\r\n\r\nx".as_slice(),
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\nx".as_slice(),
        ] {
            let (_, stats) = decode_http(&[wire]);
            assert_eq!(stats.malformed_downgrades, 1, "input: {wire:?}");
        }
        // OWS and case on the one legal coding are tolerated.
        let ok: &[u8] =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: \tChunked \r\n\r\n2\r\nok\r\n0\r\n\r\n";
        let (decoded, stats) = decode_http(&[ok]);
        assert_eq!(stats.malformed_downgrades, 0);
        assert!(decoded.ends_with(b"ok"));
    }

    #[test]
    fn padded_framing_header_past_line_cap_fails_open() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        for name in ["Content-Length:", "Transfer-Encoding:"] {
            // OWS padding pushes the value past LINE_CAP; silently
            // skipping the header would desync framing with no counter
            // incremented — it must fail open instead.
            let mut wire = b"POST / HTTP/1.1\r\n".to_vec();
            wire.extend_from_slice(name.as_bytes());
            wire.extend(std::iter::repeat(b' ').take(120));
            wire.extend_from_slice(b"5\r\n\r\nattack-sig");
            let (matches, stats) = raw_pipeline(&set, ProtoConfig::default(), &[&wire]);
            assert_eq!(
                stats.malformed_downgrades, 1,
                "padded {name} must fail open, not vanish"
            );
            assert_eq!(matches.len(), 1);
        }
    }

    #[test]
    fn oversized_chunk_and_smuggling_headers_fail_open() {
        for wire in [
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nFFFFFFF9\r\nx".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nxxxx".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: 4\r\nTransfer-Encoding: chunked\r\n\r\nx"
                .as_slice(),
            b"GET / HTTP/1.1\nHost: bare-lf\n\n".as_slice(),
            b"GET / HTTP/1.1\r\nX: a\0b\r\n\r\n".as_slice(),
        ] {
            let (_, stats) = decode_http(&[wire]);
            assert_eq!(stats.malformed_downgrades, 1, "input: {wire:?}");
        }
    }

    #[test]
    fn tls_records_scope_payload() {
        let wire_payload = b"inside-record-payload";
        let mut wire = vec![0x16, 0x03, 0x01];
        wire.extend_from_slice(&(wire_payload.len() as u16).to_be_bytes());
        wire.extend_from_slice(wire_payload);
        let (decoded, stats) = {
            let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
            let mut stats = ProtocolStats::default();
            let mut out = Vec::new();
            let mut decoded = Vec::new();
            flow.deliver(
                &wire,
                false,
                &mut stats,
                |lane, _scan, bytes, _out| {
                    if matches!(lane, Lane::Normalized(ProtocolId::Tls)) {
                        decoded.extend_from_slice(bytes);
                    }
                },
                &mut out,
            );
            (decoded, stats)
        };
        assert_eq!(stats.flows_tls, 1);
        // Probe replay suppresses re-emission of the 3 raw-scanned
        // header bytes; the record body is emitted in full.
        assert_eq!(decoded, wire_payload);
        assert_eq!(stats.unaccounted_bytes(), 0);
    }

    #[test]
    fn tls_bad_header_fails_open() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let mut wire = vec![0x16, 0x03, 0x01, 0x00, 0x02, 0xaa, 0xbb];
        wire.extend_from_slice(&[0x99, 0x03, 0x03]); // bad record type
        wire.extend_from_slice(b"attack-sig");
        let (matches, stats) = raw_pipeline(&set, ProtoConfig::default(), &[&wire]);
        assert_eq!(stats.malformed_downgrades, 1);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn mimicry_hint_disagreement_goes_raw() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let config = ProtoConfig {
            hint: Some(ProtocolId::Tls),
            ..ProtoConfig::default()
        };
        let wire = b"GET /totally-http HTTP/1.1\r\n\r\nattack-sig";
        let (matches, stats) = raw_pipeline(&set, config, &[wire.as_slice()]);
        assert_eq!(stats.mimicry_suspected, 1);
        assert_eq!(stats.flows_raw, 1);
        assert_eq!(stats.flows_http, 0);
        assert_eq!(matches.len(), 1, "raw flow still scanned");
    }

    #[test]
    fn tiny_probe_budget_exhausts_to_raw() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let config = ProtoConfig {
            probe_budget: 2,
            ..ProtoConfig::default()
        };
        let wire = b"GET / HTTP/1.1\r\n\r\nattack-sig";
        let (matches, stats) = raw_pipeline(&set, config, &[wire.as_slice()]);
        assert_eq!(stats.probe_exhausted, 1);
        assert_eq!(stats.flows_raw, 1);
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn non_protocol_traffic_is_byte_identical_to_raw_scan() {
        let set = PatternSet::new(["he", "attack-sig"]).unwrap();
        let payload: Vec<u8> = (0u32..4096)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let mut spiked = payload.clone();
        spiked.extend_from_slice(b"xheattack-sigx");
        let chunks: Vec<&[u8]> = spiked.chunks(97).collect();
        let (via_proto, stats) = raw_pipeline(&set, ProtoConfig::default(), &chunks);
        assert_eq!(stats.flows_raw, 1);

        let rules = ScopedRuleset::build(&set);
        let full = rules.lane(Lane::Raw);
        let mut state = ScanState::fresh();
        let mut plain = Vec::new();
        for chunk in &chunks {
            full.scan_chunk_into(&mut state, chunk, &mut plain);
        }
        assert_eq!(via_proto, plain, "unclassified flow must equal plain raw scan");
    }

    #[test]
    fn scoped_views_partition_and_remap() {
        let set = PatternSet::new(["anywhere", "http-only", "tls-only"])
            .unwrap()
            .with_tag(TAG_HTTP, [PatternId(1)])
            .with_tag(TAG_TLS, [PatternId(2)]);
        let rules = ScopedRuleset::build(&set);
        assert_eq!(rules.lane_len(Lane::Raw), 3);
        assert_eq!(rules.lane_len(Lane::Normalized(ProtocolId::Http)), 2);
        assert_eq!(rules.lane_len(Lane::Normalized(ProtocolId::Tls)), 2);

        let payload = b"xx http-only xx tls-only xx anywhere xx";
        let mut out = Vec::new();
        rules
            .lane(Lane::Normalized(ProtocolId::Http))
            .scan_into(payload, &mut out);
        let mut ids: Vec<u32> = out.iter().map(|m| m.pattern.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1], "http lane: anywhere + http-only, master ids");

        out.clear();
        rules
            .lane(Lane::Normalized(ProtocolId::Tls))
            .scan_into(payload, &mut out);
        let mut ids: Vec<u32> = out.iter().map(|m| m.pattern.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2], "tls lane: anywhere + tls-only, master ids");
    }

    #[test]
    fn bypass_forces_raw_and_counts_once() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let rules = ScopedRuleset::build(&set);
        let full = rules.lane(Lane::Raw);
        let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
        let mut stats = ProtocolStats::default();
        let mut out = Vec::new();
        let wire = b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nattack-sig";
        let (head, tail) = wire.split_at(20);
        let mut sink = |_: Lane, scan: &mut ScanState, bytes: &[u8], out: &mut Vec<Match>| {
            full.scan_chunk_into(scan, bytes, out)
        };
        flow.deliver(head, false, &mut stats, &mut sink, &mut out);
        assert!(!flow.is_raw());
        flow.deliver(tail, true, &mut stats, &mut sink, &mut out);
        assert!(flow.is_raw());
        assert_eq!(stats.tier_bypassed, 1);
        flow.deliver(b"more", true, &mut stats, &mut sink, &mut out);
        assert_eq!(stats.tier_bypassed, 1, "transition counted once per flow");
        assert_eq!(stats.unaccounted_bytes(), 0);
    }

    #[test]
    fn reset_at_mid_parse_counts_desync_downgrade() {
        let mut flow = ProtoFlow::new(ScanState::fresh(), ProtoConfig::default());
        let mut stats = ProtocolStats::default();
        let mut out = Vec::new();
        let sink = |_: Lane, _: &mut ScanState, _: &[u8], _: &mut Vec<Match>| {};
        flow.deliver(
            b"GET / HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial",
            false,
            &mut stats,
            sink,
            &mut out,
        );
        assert!(!flow.is_raw());
        FlowState::reset_at(&mut flow, 4096); // hole-skip lands mid-body
        flow.deliver(b"after-the-hole", false, &mut stats, sink, &mut out);
        assert!(flow.is_raw());
        assert_eq!(stats.desync_downgrades, 1);
        assert_eq!(stats.unaccounted_bytes(), 0);
    }

    #[test]
    fn keep_alive_messages_reset_framing() {
        let wire: &[u8] = b"GET /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                            GET /b HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nxyz\r\n0\r\n\r\n";
        let (decoded, stats) = decode_http(&[wire]);
        let text = String::from_utf8_lossy(&decoded);
        assert!(text.contains("abc"));
        assert!(text.contains("xyz"));
        assert!(text.contains("/b"), "second message headers emitted");
        assert_eq!(stats.malformed_downgrades, 0);
    }

    #[test]
    fn disabled_config_is_pure_passthrough() {
        let set = PatternSet::new(["attack-sig"]).unwrap();
        let config = ProtoConfig {
            enabled: false,
            ..ProtoConfig::default()
        };
        let (matches, stats) =
            raw_pipeline(&set, config, &[b"GET attack-sig".as_slice()]);
        assert_eq!(matches.len(), 1);
        assert_eq!(stats.normalized_bytes, 0);
        assert_eq!(stats.flows_http + stats.flows_tls + stats.flows_raw, 0);
    }
}
