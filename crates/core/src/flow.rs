//! Bounded flow table: per-flow scanner state for millions of concurrent
//! flows.
//!
//! The streaming layer ([`ScanState`] /
//! [`ShardedScanState`](crate::ShardedScanState)) makes a flow's scanner
//! context a cheap value; this module is the data structure that holds
//! those values for live traffic. Design constraints, in order:
//!
//! - **bounded memory** — capacity is fixed at construction. DPI sits on
//!   the fast path; an attacker opening flows must never make the table
//!   allocate without bound;
//! - **allocation-free steady state** — lookup, insert and evict touch no
//!   allocator once the table is warm. Evicted slots are reset in place
//!   and reused, so even the per-flow state vectors (one `ScanState` per
//!   shard) are recycled rather than reallocated;
//! - **O(ways) lookup** — the table is **set-associative**, like the
//!   hardware flow caches in real line cards: a flow key hashes to one
//!   set of [`FlowTable::ways`] slots, and lookup compares only those.
//!   Within a set, replacement is LRU by the table clock — a logical
//!   tick per touch by default, or caller-supplied packet timestamps
//!   (u64 nanoseconds) via [`FlowTable::touch_at`] /
//!   [`FlowTable::ingest_batch_at`], which also lets
//!   [`FlowTable::evict_idle`] reason in real idle durations;
//! - **graceful loss** — evicting a live flow forgets its scanner state;
//!   a pattern straddling the eviction point is missed, matches wholly
//!   after re-insertion are still found. [`FlowLookup::Evicted`] reports
//!   the victim so a pipeline can count (or alert on) table pressure,
//!   and [`FlowTable::evict_idle`] lets an ingest loop retire flows that
//!   stopped sending before they are forced out by collisions.
//!
//! The table is generic over the state it stores, so the same structure
//! serves a single [`CompiledMatcher`](crate::CompiledMatcher) (state =
//! [`ScanState`]), a [`ShardedMatcher`](crate::ShardedMatcher) (state =
//! [`ShardedScanState`](crate::ShardedScanState)), or the reference
//! matchers in differential tests. Scanning is injected as a closure into
//! [`FlowTable::ingest_batch`], keeping the table free of matcher
//! dependencies.

use crate::reassembly::{ReassemblyStats, StreamFlow};
use dpi_automaton::{Match, ScanState};

/// A [`FlowTable`] construction parameter that can never produce a
/// working table. Returned by the fallible constructors
/// ([`FlowTable::try_new`] / [`FlowTable::try_with_ways`]) so a resident
/// service can reject a malformed config instead of panicking a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowConfigError {
    /// `capacity` was zero — a table that can hold no flow.
    ZeroCapacity,
    /// `ways` was zero — a set with no slots can serve no lookup.
    ZeroWays,
}

impl std::fmt::Display for FlowConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowConfigError::ZeroCapacity => write!(f, "flow table capacity must be non-zero"),
            FlowConfigError::ZeroWays => write!(f, "associativity must be non-zero"),
        }
    }
}

impl std::error::Error for FlowConfigError {}

/// A flow identity — wide enough to pack an IPv6-free 5-tuple (or a hash
/// of anything larger) without collisions mattering at table scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey(pub u128);

impl FlowKey {
    /// Packs an IPv4 5-tuple into a key (src/dst address, src/dst port,
    /// protocol).
    pub fn from_v4(src: u32, dst: u32, sport: u16, dport: u16, proto: u8) -> FlowKey {
        FlowKey(
            (src as u128) << 88
                | (dst as u128) << 56
                | (sport as u128) << 40
                | (dport as u128) << 24
                | proto as u128,
        )
    }

    /// 64-bit mix used to pick the slot set (SplitMix64 over the folded
    /// halves — cheap, and good enough that sets fill evenly).
    fn hash(self) -> u64 {
        let mut z = (self.0 as u64) ^ ((self.0 >> 64) as u64) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow:{:032x}", self.0)
    }
}

/// Per-flow scanner state a [`FlowTable`] can recycle in place.
pub trait FlowState {
    /// Returns the state to its fresh-flow value without reallocating.
    fn reset(&mut self);

    /// Returns the state to its fresh-flow value positioned at stream
    /// offset `offset`: history masked as at flow start, so nothing from
    /// before the reset can influence later matching, but match `end`
    /// offsets stay stream-absolute. The resume primitive after a
    /// reassembly hole-skip — see
    /// [`ScanState::reset_at`](dpi_automaton::ScanState::reset_at).
    fn reset_at(&mut self, offset: u64);

    /// Bytes of auxiliary buffer this state currently holds (0 for bare
    /// scanner registers; the reassembler's out-of-order window for
    /// [`StreamFlow`]). The table subtracts this from its
    /// [`ReassemblyStats::bytes_held`] gauge when the flow is evicted or
    /// removed, keeping the gauge honest under table pressure.
    fn held_bytes(&self) -> usize {
        0
    }
}

impl FlowState for ScanState {
    fn reset(&mut self) {
        ScanState::reset(self);
    }

    fn reset_at(&mut self, offset: u64) {
        ScanState::reset_at(self, offset);
    }
}

impl FlowState for crate::ShardedScanState {
    fn reset(&mut self) {
        crate::ShardedScanState::reset(self);
    }

    fn reset_at(&mut self, offset: u64) {
        crate::ShardedScanState::reset_at(self, offset);
    }
}

/// What [`FlowTable::touch`] did to serve a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowLookup {
    /// The flow was resident; its state resumes where it left off.
    Hit,
    /// The flow was absent and took a free slot (fresh state).
    New,
    /// The flow was absent and evicted this set's LRU resident (fresh
    /// state; the victim's scanner context is lost).
    Evicted(FlowKey),
}

/// Running counters of table behaviour (monotonic since construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowTableStats {
    /// Lookups that found the flow resident.
    pub hits: u64,
    /// Lookups that inserted a new flow (free slot or eviction).
    pub misses: u64,
    /// Residents displaced by set-LRU replacement.
    pub evictions: u64,
    /// Residents retired by [`FlowTable::evict_idle`].
    pub idle_evictions: u64,
    /// Aggregated reassembly counters across every flow's ingest (all
    /// zero when the ingest path carries in-order payload chunks rather
    /// than TCP segments). The [`ReassemblyStats::bytes_held`] gauge is
    /// table-wide: it drops when flows drain *and* when buffered flows
    /// are evicted, removed, or idle-retired.
    pub reassembly: ReassemblyStats,
}

/// One slot of the set-associative table.
#[derive(Debug, Clone)]
struct Slot<S> {
    key: FlowKey,
    /// Logical tick of the last touch (LRU ordering within a set).
    last_used: u64,
    occupied: bool,
    state: S,
}

/// A packet entering the flow pipeline: which flow it belongs to and its
/// payload bytes (one TCP segment / UDP datagram worth, any size).
#[derive(Debug, Clone, Copy)]
pub struct FlowPacket<'a> {
    /// Flow identity.
    pub key: FlowKey,
    /// Payload chunk.
    pub payload: &'a [u8],
}

/// A raw TCP segment entering the reassembling flow pipeline: flow
/// identity, the segment's position in the flow's sequence space
/// (relative byte offset from flow start — see the
/// [`reassembly`](crate::reassembly) module docs), and its payload.
/// Unlike [`FlowPacket`], segments may arrive reordered, retransmitted,
/// overlapping, or not at all.
#[derive(Debug, Clone, Copy)]
pub struct FlowSegment<'a> {
    /// Flow identity.
    pub key: FlowKey,
    /// Sequence offset of the first payload byte, relative to flow
    /// start.
    pub seq: u64,
    /// Segment payload bytes.
    pub payload: &'a [u8],
}

/// A match attributed to the flow it occurred in. `matched.end` is the
/// stream-absolute offset within that flow (since flow start or the last
/// eviction of its state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMatch {
    /// The flow the occurrence was found in.
    pub key: FlowKey,
    /// The occurrence (stream-absolute `end`).
    pub matched: Match,
}

/// Bounded set-associative table of per-flow scanner states with
/// in-set LRU replacement. See the [module docs](self) for the design
/// constraints.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{Dfa, PatternSet, ScanState};
/// use dpi_core::{CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton};
/// use dpi_core::{FlowKey, FlowPacket, FlowTable};
///
/// let set = PatternSet::new(["hers"])?;
/// let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
/// let compiled = CompiledAutomaton::compile(&reduced);
/// let matcher = CompiledMatcher::new(&compiled, &set);
///
/// let mut table = FlowTable::new(1024, ScanState::fresh());
/// let flow = FlowKey(7);
/// let noise = FlowKey(8);
/// // "hers" split across two packets, another flow interleaved between.
/// let packets = [
///     FlowPacket { key: flow, payload: b"xhe" },
///     FlowPacket { key: noise, payload: b"rs" }, // no "he" before it!
///     FlowPacket { key: flow, payload: b"rs" },
/// ];
/// let mut alerts = Vec::new();
/// table.ingest_batch(
///     packets.iter().copied(),
///     |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
///     &mut alerts,
/// );
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].key, flow);
/// assert_eq!(alerts[0].matched.end, 5); // absolute within the flow
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowTable<S> {
    slots: Vec<Slot<S>>,
    /// Number of sets (power of two); `slots.len() = sets × ways`.
    sets: usize,
    ways: usize,
    /// Logical clock, advanced once per [`FlowTable::touch`].
    tick: u64,
    occupied: usize,
    stats: FlowTableStats,
    /// Per-packet match scratch reused by [`FlowTable::ingest_batch`].
    scratch: Vec<Match>,
}

/// Default associativity: 8 ways balances LRU quality against lookup
/// compare count (hardware flow caches commonly sit at 4–16).
pub const DEFAULT_WAYS: usize = 8;

impl<S: FlowState + Clone> FlowTable<S> {
    /// A table holding at least `capacity` flows with [`DEFAULT_WAYS`]
    /// associativity. `template` is cloned into every slot up front (the
    /// one bulk allocation), so the scan path never constructs states —
    /// for a [`ShardedMatcher`](crate::ShardedMatcher) pass
    /// `matcher.flow_state()`.
    ///
    /// The realized capacity is `capacity` rounded up to a whole number
    /// of power-of-two sets.
    pub fn new(capacity: usize, template: S) -> FlowTable<S> {
        Self::with_ways(capacity, DEFAULT_WAYS, template)
    }

    /// Fallible [`FlowTable::new`]: rejects a zero capacity with
    /// [`FlowConfigError`] instead of panicking — the constructor for
    /// resident services whose config arrives from outside the binary.
    pub fn try_new(capacity: usize, template: S) -> Result<FlowTable<S>, FlowConfigError> {
        Self::try_with_ways(capacity, DEFAULT_WAYS, template)
    }

    /// [`FlowTable::new`] with explicit associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `capacity` is zero; use
    /// [`FlowTable::try_with_ways`] where a malformed config must be an
    /// error value.
    pub fn with_ways(capacity: usize, ways: usize, template: S) -> FlowTable<S> {
        match Self::try_with_ways(capacity, ways, template) {
            Ok(table) => table,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`FlowTable::with_ways`].
    pub fn try_with_ways(
        capacity: usize,
        ways: usize,
        template: S,
    ) -> Result<FlowTable<S>, FlowConfigError> {
        if capacity == 0 {
            return Err(FlowConfigError::ZeroCapacity);
        }
        if ways == 0 {
            return Err(FlowConfigError::ZeroWays);
        }
        let sets = capacity.div_ceil(ways).next_power_of_two();
        let slots = vec![
            Slot {
                key: FlowKey(0),
                last_used: 0,
                occupied: false,
                state: template,
            };
            sets * ways
        ];
        Ok(FlowTable {
            slots,
            sets,
            ways,
            tick: 0,
            occupied: 0,
            stats: FlowTableStats::default(),
            scratch: Vec::new(),
        })
    }

    /// Total slots (the bounded capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Slots per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Currently resident flows.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// `true` when no flow is resident.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Counters since construction.
    pub fn stats(&self) -> FlowTableStats {
        self.stats
    }

    /// Looks `key` up, inserting (and, if its set is full, evicting the
    /// set's LRU resident) on miss. Returns the flow's state — resumed on
    /// hit, fresh on miss — and what happened. O(ways), allocation-free.
    ///
    /// Advances the table's clock by one logical tick; ingest loops that
    /// know real packet times should call [`FlowTable::touch_at`]
    /// instead so idle eviction can reason in wall-clock durations.
    pub fn touch(&mut self, key: FlowKey) -> (&mut S, FlowLookup) {
        self.touch_at(key, self.tick + 1)
    }

    /// [`FlowTable::touch`] with a caller-supplied packet timestamp
    /// (e.g. nanoseconds since capture start). The table's clock is the
    /// maximum timestamp seen, so slightly out-of-order packets are
    /// tolerated (an older timestamp still counts as "now" — LRU order
    /// within a set can never run backwards). Tick-based and
    /// timestamp-based touches share one clock; a pipeline should pick
    /// one unit and stay with it, and pass the same unit to
    /// [`FlowTable::evict_idle`].
    pub fn touch_at(&mut self, key: FlowKey, now: u64) -> (&mut S, FlowLookup) {
        let (index, outcome) = self.touch_slot(key, now);
        (&mut self.slots[index].state, outcome)
    }

    /// [`FlowTable::touch_at`] returning the slot index instead of the
    /// state reference — lets ingest paths that also need `self.stats`
    /// split the borrow.
    fn touch_slot(&mut self, key: FlowKey, now: u64) -> (usize, FlowLookup) {
        self.tick = self.tick.max(now);
        let set = (key.hash() as usize) & (self.sets - 1);
        let base = set * self.ways;
        let mut victim = base;
        let mut victim_tick = u64::MAX;
        let mut free: Option<usize> = None;
        for i in base..base + self.ways {
            let slot = &self.slots[i];
            if slot.occupied && slot.key == key {
                self.slots[i].last_used = self.tick;
                self.stats.hits += 1;
                return (i, FlowLookup::Hit);
            }
            if !slot.occupied {
                free.get_or_insert(i);
            } else if slot.last_used < victim_tick {
                victim_tick = slot.last_used;
                victim = i;
            }
        }
        self.stats.misses += 1;
        let (index, outcome) = match free {
            Some(i) => {
                self.occupied += 1;
                (i, FlowLookup::New)
            }
            None => {
                self.stats.evictions += 1;
                // The victim's buffered reassembly bytes leave the table
                // with it — keep the held-bytes gauge honest.
                let held = self.slots[victim].state.held_bytes();
                self.stats.reassembly.bytes_held -= held as u64;
                (victim, FlowLookup::Evicted(self.slots[victim].key))
            }
        };
        let slot = &mut self.slots[index];
        slot.key = key;
        slot.last_used = self.tick;
        slot.occupied = true;
        slot.state.reset();
        (index, outcome)
    }

    /// Read-write access to `key`'s state if the flow is resident —
    /// without inserting, evicting, advancing the clock, or counting a
    /// hit/miss. The service layer uses this to reposition a flow (e.g.
    /// [`FlowState::reset_at`] after load-shedding) without perturbing
    /// LRU order.
    pub fn get_mut(&mut self, key: FlowKey) -> Option<&mut S> {
        let set = (key.hash() as usize) & (self.sets - 1);
        let base = set * self.ways;
        (base..base + self.ways)
            .find(|&i| self.slots[i].occupied && self.slots[i].key == key)
            .map(move |i| &mut self.slots[i].state)
    }

    /// Removes `key` if resident (flow terminated — e.g. TCP FIN/RST),
    /// returning whether it was. The slot's state is recycled.
    pub fn remove(&mut self, key: FlowKey) -> bool {
        let set = (key.hash() as usize) & (self.sets - 1);
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.slots[i].occupied && self.slots[i].key == key {
                let held = self.slots[i].state.held_bytes();
                self.stats.reassembly.bytes_held -= held as u64;
                self.slots[i].occupied = false;
                self.occupied -= 1;
                return true;
            }
        }
        false
    }

    /// The table's clock: the last logical tick, or — when the ingest
    /// path supplies packet timestamps via [`FlowTable::touch_at`] /
    /// [`FlowTable::ingest_batch_at`] — the latest timestamp observed.
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Retires every flow idle for more than `max_idle`, returning how
    /// many. The duration is in whatever unit drives the clock: logical
    /// ticks (one per [`FlowTable::touch`]) on the default path, or the
    /// caller's timestamp unit (e.g. nanoseconds) when packets are
    /// ingested with [`FlowTable::touch_at`] /
    /// [`FlowTable::ingest_batch_at`]. Lets ingest loops shed dead flows
    /// on their own schedule instead of waiting for collisions to force
    /// them out.
    pub fn evict_idle(&mut self, max_idle: u64) -> usize {
        let deadline = self.tick.saturating_sub(max_idle);
        let mut evicted = 0usize;
        let mut held_retired = 0usize;
        for slot in &mut self.slots {
            if slot.occupied && slot.last_used < deadline {
                slot.occupied = false;
                held_retired += slot.state.held_bytes();
                evicted += 1;
            }
        }
        self.occupied -= evicted;
        self.stats.idle_evictions += evicted as u64;
        self.stats.reassembly.bytes_held -= held_retired as u64;
        evicted
    }

    /// The packet-batch ingest path: routes every packet to its flow's
    /// state (inserting/evicting as needed) and runs `scan` on it,
    /// collecting matches tagged with their flow into `out` (cleared
    /// first, in packet order; within a packet, canonical order).
    ///
    /// `scan` receives the flow's state, the packet payload, and a match
    /// buffer to **append** to — pass the matcher's resumable entry point
    /// (e.g. [`CompiledMatcher::scan_chunk_into`] or a closure around
    /// [`ShardedMatcher::scan_chunk_into`] with its scratch).
    /// Steady-state the whole path performs no allocation beyond growth
    /// of `out`.
    ///
    /// [`CompiledMatcher::scan_chunk_into`]: crate::CompiledMatcher::scan_chunk_into
    /// [`ShardedMatcher::scan_chunk_into`]: crate::ShardedMatcher::scan_chunk_into
    pub fn ingest_batch<'p>(
        &mut self,
        packets: impl IntoIterator<Item = FlowPacket<'p>>,
        scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) {
        let tick = self.tick;
        self.ingest_batch_at(
            packets
                .into_iter()
                .zip(1u64..)
                .map(move |(p, i)| (p, tick + i)),
            scan,
            out,
        );
    }

    /// [`FlowTable::ingest_batch`] with per-packet timestamps: each item
    /// is `(packet, time)` where `time` is the packet's capture time in
    /// the caller's unit (u64 nanoseconds, typically). Timestamps drive
    /// the in-set LRU and [`FlowTable::evict_idle`] durations; see
    /// [`FlowTable::touch_at`] for the clock semantics.
    pub fn ingest_batch_at<'p>(
        &mut self,
        packets: impl IntoIterator<Item = (FlowPacket<'p>, u64)>,
        mut scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) {
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (packet, time) in packets {
            let (state, _) = self.touch_at(packet.key, time);
            scratch.clear();
            scan(state, packet.payload, &mut scratch);
            out.extend(scratch.iter().map(|&m| FlowMatch {
                key: packet.key,
                matched: m,
            }));
        }
        self.scratch = scratch;
    }

    /// Visits every resident flow (arbitrary order) without touching the
    /// clock, LRU order, or counters. The service runtime's end-of-stream
    /// hook: scanner states that buffer matches past a verification
    /// watermark (e.g. two-stage window merging) need a final per-flow
    /// drain that the chunk-granular ingest closures cannot express.
    pub fn for_each_flow(&mut self, mut visit: impl FnMut(FlowKey, &mut S)) {
        for slot in self.slots.iter_mut().filter(|s| s.occupied) {
            visit(slot.key, &mut slot.state);
        }
    }
}

/// The reassembling ingest paths: available when the table's per-flow
/// state is a [`StreamFlow`] (scanner registers + bounded reassembler).
impl<S: FlowState + Clone> FlowTable<StreamFlow<S>> {
    /// The raw-segment ingest path: routes every TCP segment to its
    /// flow's reassembler, which delivers in-order bytes to `scan` —
    /// tolerating reordering, retransmission, overlap and loss under the
    /// per-flow budget (see the [`reassembly`](crate::reassembly) module
    /// docs). Matches land in `out` (cleared first) tagged with their
    /// flow; reassembly counters aggregate into
    /// [`FlowTableStats::reassembly`].
    ///
    /// `scan` receives the flow's **scanner** state (the `S` inside the
    /// [`StreamFlow`]), a delivered in-order chunk, and a match buffer
    /// to append to — the same closure shape as
    /// [`FlowTable::ingest_batch`].
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{Dfa, PatternSet, ScanState};
    /// use dpi_core::{CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton};
    /// use dpi_core::{FlowKey, FlowSegment, FlowTable};
    /// use dpi_core::reassembly::{ReassemblyConfig, StreamFlow};
    ///
    /// let set = PatternSet::new(["hers"])?;
    /// let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
    /// let compiled = CompiledAutomaton::compile(&reduced);
    /// let matcher = CompiledMatcher::new(&compiled, &set);
    ///
    /// let template = StreamFlow::new(ReassemblyConfig::new(4096), ScanState::fresh());
    /// let mut table = FlowTable::new(1024, template);
    /// let flow = FlowKey(7);
    /// // "xhers" with its segments swapped: "rs" arrives before "xhe".
    /// let segments = [
    ///     FlowSegment { key: flow, seq: 3, payload: b"rs" },
    ///     FlowSegment { key: flow, seq: 0, payload: b"xhe" },
    /// ];
    /// let mut alerts = Vec::new();
    /// table.ingest_segments(
    ///     segments.iter().copied(),
    ///     |state, chunk, out| matcher.scan_chunk_into(state, chunk, out),
    ///     &mut alerts,
    /// );
    /// assert_eq!(alerts.len(), 1);
    /// assert_eq!(alerts[0].matched.end, 5); // sequence-absolute
    /// assert!(table.stats().reassembly.segments_buffered >= 1);
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn ingest_segments<'p>(
        &mut self,
        segments: impl IntoIterator<Item = FlowSegment<'p>>,
        scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) {
        let tick = self.tick;
        self.ingest_segments_at(
            segments
                .into_iter()
                .zip(1u64..)
                .map(move |(s, i)| (s, tick + i)),
            scan,
            out,
        );
    }

    /// [`FlowTable::ingest_segments`] with per-segment capture
    /// timestamps (the clock semantics of [`FlowTable::touch_at`]).
    pub fn ingest_segments_at<'p>(
        &mut self,
        segments: impl IntoIterator<Item = (FlowSegment<'p>, u64)>,
        mut scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) {
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (segment, time) in segments {
            let (index, _) = self.touch_slot(segment.key, time);
            scratch.clear();
            let (slots, stats) = (&mut self.slots, &mut self.stats);
            slots[index].state.ingest(
                segment.seq,
                segment.payload,
                &mut scan,
                &mut scratch,
                &mut stats.reassembly,
            );
            out.extend(scratch.iter().map(|&m| FlowMatch {
                key: segment.key,
                matched: m,
            }));
        }
        self.scratch = scratch;
    }

    /// Single-segment ingest with mid-stream resync policy — the
    /// building block the service runtime drives instead of
    /// [`FlowTable::ingest_segments_at`], which hides the lookup
    /// outcome it needs. Behaves like one iteration of that loop
    /// (touch, reassemble, scan, tag matches — **appending** to `out`
    /// rather than clearing it), plus the resync hook: when `resync` is
    /// set, the flow first flushes any bytes it still buffers through
    /// the scanner (admitted bytes are never silently discarded) and
    /// is then repositioned to `segment.seq` via
    /// [`FlowState::reset_at`] before ingest — the explicit resume
    /// point after the service shed the flow's intervening bytes, so
    /// the scanner restarts cleanly instead of mislabelling the shed
    /// gap as a reassembly hole. (Flows resuming mid-stream *without*
    /// a marker — eviction victims, post-restart flows — need no
    /// special case: the reassembler's budget rule skips the
    /// never-admitted gap and counts it honestly.)
    ///
    /// Returns what the table did (hit / new / evicted) so the caller
    /// can count evictions against its own admission ledger.
    pub fn ingest_segment_at(
        &mut self,
        segment: FlowSegment<'_>,
        time: u64,
        resync: bool,
        mut scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) -> FlowLookup {
        let (index, outcome) = self.touch_slot(segment.key, time);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let (slots, stats) = (&mut self.slots, &mut self.stats);
        if resync {
            // Deliver whatever the flow still buffers before
            // repositioning: those bytes were admitted, so they must
            // reach the scanner (hole-skips counted) — a plain
            // `reset_at` would discard them without a trace and leave
            // the `bytes_held` gauge stale.
            slots[index]
                .state
                .flush(&mut scan, &mut scratch, &mut stats.reassembly);
            slots[index].state.reset_at(segment.seq);
        }
        slots[index].state.ingest(
            segment.seq,
            segment.payload,
            &mut scan,
            &mut scratch,
            &mut stats.reassembly,
        );
        out.extend(scratch.iter().map(|&m| FlowMatch {
            key: segment.key,
            matched: m,
        }));
        self.scratch = scratch;
        outcome
    }

    /// Flushes every resident flow's reassembler: abandons outstanding
    /// holes and scans all buffered data (end of capture, or a periodic
    /// drain alongside [`FlowTable::evict_idle`]). Matches land in `out`
    /// (cleared first) tagged with their flow.
    pub fn flush_flows(
        &mut self,
        mut scan: impl FnMut(&mut S, &[u8], &mut Vec<Match>),
        out: &mut Vec<FlowMatch>,
    ) {
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let (slots, stats) = (&mut self.slots, &mut self.stats);
        for slot in slots.iter_mut().filter(|s| s.occupied) {
            scratch.clear();
            slot.state.flush(&mut scan, &mut scratch, &mut stats.reassembly);
            out.extend(scratch.iter().map(|&m| FlowMatch {
                key: slot.key,
                matched: m,
            }));
        }
        self.scratch = scratch;
    }

    /// Total out-of-order bytes buffered across all resident flows —
    /// always ≤ `len() × budget`, and equal to the
    /// [`ReassemblyStats::bytes_held`] gauge in [`FlowTable::stats`].
    pub fn buffered_bytes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.occupied)
            .map(|s| s.state.held_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::{CompiledAutomaton, CompiledMatcher};
    use crate::lookup_table::DtpConfig;
    use crate::reduce::ReducedAutomaton;
    use dpi_automaton::{Dfa, MultiMatcher, PatternSet};

    fn matcher_fixture() -> (PatternSet, CompiledAutomaton) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        (set, CompiledAutomaton::compile(&reduced))
    }

    #[test]
    fn capacity_is_bounded_and_rounded() {
        let t: FlowTable<ScanState> = FlowTable::new(100, ScanState::fresh());
        assert!(t.capacity() >= 100);
        assert_eq!(t.capacity() % t.ways(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn touch_hit_miss_and_state_persistence() {
        let mut t: FlowTable<ScanState> = FlowTable::new(64, ScanState::fresh());
        let k = FlowKey(42);
        let (state, outcome) = t.touch(k);
        assert_eq!(outcome, FlowLookup::New);
        state.push_byte(b'x');
        let (state, outcome) = t.touch(k);
        assert_eq!(outcome, FlowLookup::Hit);
        assert_eq!(state.offset, 1, "state must persist across touches");
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn full_set_evicts_lru_and_resets_state() {
        // 1-way table with 1 set: every distinct key evicts the previous.
        let mut t: FlowTable<ScanState> = FlowTable::with_ways(1, 1, ScanState::fresh());
        assert_eq!(t.capacity(), 1);
        let (state, _) = t.touch(FlowKey(1));
        state.push_byte(b'a');
        let (state, outcome) = t.touch(FlowKey(2));
        assert_eq!(outcome, FlowLookup::Evicted(FlowKey(1)));
        assert_eq!(state.offset, 0, "evicted slot must be reset, not leaked");
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().evictions, 1);
        // The evicted flow restarting is a miss with fresh state.
        let (state, outcome) = t.touch(FlowKey(1));
        assert!(matches!(outcome, FlowLookup::Evicted(_)));
        assert_eq!(state.offset, 0);
    }

    #[test]
    fn lru_prefers_the_stalest_resident() {
        // Force both keys into one set by using a 1-set table (ways 2).
        let mut t: FlowTable<ScanState> = FlowTable::with_ways(2, 2, ScanState::fresh());
        assert_eq!(t.capacity(), 2);
        t.touch(FlowKey(1));
        t.touch(FlowKey(2));
        t.touch(FlowKey(1)); // 2 is now LRU
        let (_, outcome) = t.touch(FlowKey(3));
        assert_eq!(outcome, FlowLookup::Evicted(FlowKey(2)));
        let (_, outcome) = t.touch(FlowKey(1));
        assert_eq!(outcome, FlowLookup::Hit, "MRU flow must have survived");
    }

    #[test]
    fn remove_and_idle_eviction() {
        let mut t: FlowTable<ScanState> = FlowTable::new(64, ScanState::fresh());
        t.touch(FlowKey(1));
        t.touch(FlowKey(2));
        assert!(t.remove(FlowKey(1)));
        assert!(!t.remove(FlowKey(1)));
        assert_eq!(t.len(), 1);
        // Flow 2 last touched at tick 2; 60 touches later it is idle.
        for i in 0..60u128 {
            t.touch(FlowKey(100 + i));
        }
        let evicted = t.evict_idle(30);
        assert!(evicted >= 1, "flow 2 must be retired as idle");
        assert_eq!(t.stats().idle_evictions, evicted as u64);
        assert!(!t.remove(FlowKey(2)));
    }

    #[test]
    fn timestamps_drive_lru_and_idle_eviction() {
        // 1-set table, 2 ways; timestamps in fake nanoseconds.
        let mut t: FlowTable<ScanState> = FlowTable::with_ways(2, 2, ScanState::fresh());
        t.touch_at(FlowKey(1), 1_000);
        t.touch_at(FlowKey(2), 2_000);
        t.touch_at(FlowKey(1), 5_000); // flow 2 is now LRU by time
        assert_eq!(t.now(), 5_000);
        let (_, outcome) = t.touch_at(FlowKey(3), 6_000);
        assert_eq!(outcome, FlowLookup::Evicted(FlowKey(2)));
        // Idle eviction in the same unit: flow 3 (last seen 6_000) is
        // idle once the clock passes 6_000 + 3_000.
        t.touch_at(FlowKey(1), 10_000);
        assert_eq!(t.evict_idle(3_000), 1);
        assert!(!t.remove(FlowKey(3)));
        assert!(t.remove(FlowKey(1)));
    }

    #[test]
    fn out_of_order_timestamps_never_rewind_the_clock() {
        let mut t: FlowTable<ScanState> = FlowTable::new(16, ScanState::fresh());
        t.touch_at(FlowKey(1), 9_000);
        // A late packet with an older stamp: clock holds at 9_000 and
        // the touched flow is treated as most-recent.
        t.touch_at(FlowKey(2), 4_000);
        assert_eq!(t.now(), 9_000);
        assert_eq!(t.evict_idle(1_000), 0, "no flow may look future-idle");
        // Mixing in a tick-based touch keeps monotonicity.
        t.touch(FlowKey(3));
        assert_eq!(t.now(), 9_001);
    }

    #[test]
    fn ingest_batch_at_scans_and_stamps() {
        let (set, compiled) = matcher_fixture();
        let m = CompiledMatcher::new(&compiled, &set);
        let mut table = FlowTable::new(64, ScanState::fresh());
        let (a, b) = (FlowKey(1), FlowKey(2));
        let packets = [
            (FlowPacket { key: a, payload: b"ushe" }, 100u64),
            (FlowPacket { key: b, payload: b"zzzz" }, 200),
            (FlowPacket { key: a, payload: b"rs" }, 300),
        ];
        let mut alerts = Vec::new();
        table.ingest_batch_at(
            packets.iter().copied(),
            |state, chunk, out| m.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        assert_eq!(table.now(), 300);
        let whole = m.find_all(b"ushers");
        assert_eq!(alerts.len(), whole.len());
        for (alert, want) in alerts.iter().zip(&whole) {
            assert_eq!(alert.key, a);
            assert_eq!(alert.matched, *want);
        }
        // Flow b idle after 200; duration units are the caller's.
        assert_eq!(table.evict_idle(99), 1);
    }

    #[test]
    fn ingest_batch_attributes_matches_to_flows() {
        let (set, compiled) = matcher_fixture();
        let m = CompiledMatcher::new(&compiled, &set);
        let mut table = FlowTable::new(256, ScanState::fresh());
        let (a, b) = (FlowKey(1), FlowKey(2));
        // Flow a carries "ushers" split 2/4; flow b carries no match and
        // is interleaved to try to pollute a's history.
        let packets = [
            FlowPacket { key: a, payload: b"us" },
            FlowPacket { key: b, payload: b"hhhh" },
            FlowPacket { key: a, payload: b"hers" },
            FlowPacket { key: b, payload: b"xx" },
        ];
        let mut alerts = Vec::new();
        table.ingest_batch(
            packets.iter().copied(),
            |state, chunk, out| m.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        let whole = m.find_all(b"ushers");
        assert_eq!(alerts.len(), whole.len());
        for (alert, want) in alerts.iter().zip(&whole) {
            assert_eq!(alert.key, a);
            assert_eq!(alert.matched, *want);
        }
    }

    #[test]
    fn eviction_mid_flow_loses_only_straddling_matches() {
        let (set, compiled) = matcher_fixture();
        let m = CompiledMatcher::new(&compiled, &set);
        // Capacity-1 table: interleaving two flows evicts each other's
        // state between every packet.
        let mut table = FlowTable::with_ways(1, 1, ScanState::fresh());
        let (a, b) = (FlowKey(1), FlowKey(2));
        let packets = [
            FlowPacket { key: a, payload: b"she" },  // she, he complete here
            FlowPacket { key: b, payload: b"x" },    // evicts a
            FlowPacket { key: a, payload: b"rs" },   // "hers" straddles → lost
            FlowPacket { key: a, payload: b"ushers" }, // same packet: all found
        ];
        let mut alerts = Vec::new();
        table.ingest_batch(
            packets.iter().copied(),
            |state, chunk, out| m.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        let a_matches: Vec<Match> = alerts
            .iter()
            .filter(|f| f.key == a)
            .map(|f| f.matched)
            .collect();
        // Packet 1: she@..3 + he@..3. Packet 3 ("rs") alone: nothing —
        // the straddling "hers" is the documented loss. Packet 4 restarts
        // at offset 0 and finds she/he/hers within itself.
        assert_eq!(a_matches.len(), 2 + 3);
        assert!(table.stats().evictions >= 2);
    }

    #[test]
    fn ingest_is_allocation_stable_on_scratch() {
        let (set, compiled) = matcher_fixture();
        let m = CompiledMatcher::new(&compiled, &set);
        let mut table = FlowTable::new(16, ScanState::fresh());
        let packets = [FlowPacket { key: FlowKey(9), payload: b"ushers hers" }];
        let mut alerts = Vec::new();
        table.ingest_batch(
            packets.iter().copied(),
            |state, chunk, out| m.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        let cap = table.scratch.capacity();
        assert!(cap >= 4);
        table.ingest_batch(
            packets.iter().copied(),
            |state, chunk, out| m.scan_chunk_into(state, chunk, out),
            &mut alerts,
        );
        assert_eq!(table.scratch.capacity(), cap, "scratch must be reused");
    }

    #[test]
    fn malformed_configs_are_typed_errors() {
        assert_eq!(
            FlowTable::<ScanState>::try_new(0, ScanState::fresh()).err(),
            Some(FlowConfigError::ZeroCapacity)
        );
        assert_eq!(
            FlowTable::<ScanState>::try_with_ways(8, 0, ScanState::fresh()).err(),
            Some(FlowConfigError::ZeroWays)
        );
        assert_eq!(
            FlowConfigError::ZeroCapacity.to_string(),
            "flow table capacity must be non-zero"
        );
        assert!(FlowTable::<ScanState>::try_with_ways(8, 2, ScanState::fresh()).is_ok());
    }

    #[test]
    #[should_panic(expected = "flow table capacity must be non-zero")]
    fn zero_capacity_still_panics_on_the_infallible_path() {
        let _ = FlowTable::<ScanState>::new(0, ScanState::fresh());
    }

    #[test]
    fn get_mut_peeks_without_perturbing() {
        let mut t: FlowTable<ScanState> = FlowTable::new(16, ScanState::fresh());
        assert!(t.get_mut(FlowKey(5)).is_none());
        t.touch(FlowKey(5));
        let stats = t.stats();
        let state = t.get_mut(FlowKey(5)).expect("resident");
        state.push_byte(b'x');
        assert_eq!(t.stats(), stats, "peek must not count hits or misses");
        assert_eq!(t.get_mut(FlowKey(5)).unwrap().offset, 1);
    }

    #[test]
    fn flow_key_packing_is_injective_on_fields() {
        let a = FlowKey::from_v4(1, 2, 3, 4, 6);
        let b = FlowKey::from_v4(1, 2, 3, 4, 17);
        let c = FlowKey::from_v4(1, 2, 4, 3, 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.to_string().starts_with("flow:"));
    }
}
