//! In-crate property tests for the DTP reduction: lookup-table structural
//! invariants and reduction-quality monotonicity over random pattern sets.

#![cfg(test)]

use crate::{DefaultLut, DtpConfig, ReducedAutomaton};
use dpi_automaton::{Dfa, PatternSet};
use proptest::prelude::*;

fn pattern_vec() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), any::<u8>()],
            1..8,
        ),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lookup-table structure: depth-1 rows point at depth-1 states whose
    /// path is exactly the row byte; depth-2/3 entries have unique compare
    /// keys per row and targets of the right depth ending in the row byte.
    #[test]
    fn lut_structure(patterns in pattern_vec(), k2 in 0usize..6, k3 in 0usize..3) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let lut = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2, k3 });
        for (c, row) in lut.iter() {
            if let Some(d1) = row.depth1 {
                prop_assert_eq!(dfa.depth(d1), 1);
                prop_assert_eq!(dfa.last_byte(d1), Some(c));
            }
            prop_assert!(row.depth2.len() <= k2);
            prop_assert!(row.depth3.len() <= k3);
            let mut prevs: Vec<u8> = row.depth2.iter().map(|e| e.prev).collect();
            prevs.sort_unstable();
            let before = prevs.len();
            prevs.dedup();
            prop_assert_eq!(prevs.len(), before, "duplicate depth-2 compare byte");
            for e in &row.depth2 {
                prop_assert_eq!(dfa.depth(e.target), 2);
                prop_assert_eq!(dfa.last_two_bytes(e.target), Some([e.prev, c]));
                prop_assert!(e.popularity > 0);
            }
            let mut prev2s: Vec<[u8; 2]> = row.depth3.iter().map(|e| e.prev2).collect();
            prev2s.sort_unstable();
            let before = prev2s.len();
            prev2s.dedup();
            prop_assert_eq!(prev2s.len(), before, "duplicate depth-3 compare pair");
            for e in &row.depth3 {
                prop_assert_eq!(dfa.depth(e.target), 3);
                prop_assert_eq!(dfa.last_byte(e.target), Some(c));
            }
        }
    }

    /// Depth-2 selection is by popularity: every selected entry's
    /// popularity ≥ every rejected candidate's popularity for that row.
    #[test]
    fn lut_selection_is_greedy_optimal(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let narrow = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 1, k3: 0 });
        let wide = DefaultLut::build(&dfa, DtpConfig { depth1: true, k2: 255, k3: 0 });
        for c in 0..=255u8 {
            let all = &wide.row(c).depth2;
            if let Some(best) = narrow.row(c).depth2.first() {
                for e in all {
                    prop_assert!(best.popularity >= e.popularity);
                }
            } else {
                prop_assert!(all.is_empty());
            }
        }
    }

    /// Reduction quality is monotone in the lookup-table budget, and
    /// stored pointers never include start-state targets.
    #[test]
    fn reduction_monotone_and_clean(patterns in pattern_vec()) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let mut last = usize::MAX;
        for cfg in [
            DtpConfig::NONE,
            DtpConfig::D1,
            DtpConfig::D1_D2,
            DtpConfig::PAPER,
        ] {
            let red = ReducedAutomaton::reduce(&dfa, cfg);
            prop_assert!(red.verify_against(&dfa).is_none());
            let stored = red.stored_pointers();
            prop_assert!(stored <= last, "more defaults must not store more");
            last = stored;
            for s in red.state_ids() {
                let mut prev_byte = None;
                for &(b, t) in red.stored(s) {
                    prop_assert_ne!(t, dpi_automaton::StateId::START);
                    if let Some(p) = prev_byte {
                        prop_assert!(b > p, "stored pointers must be byte-sorted");
                    }
                    prev_byte = Some(b);
                }
            }
        }
    }

    /// The runtime step with *any* fabricated history agrees with the DFA
    /// whenever that history is consistent with the current state — the
    /// longest-suffix invariant in its testable form.
    #[test]
    fn runtime_history_consistency(
        patterns in pattern_vec(),
        walk in proptest::collection::vec(any::<u8>(), 2..60),
    ) {
        let Ok(set) = PatternSet::new(&patterns) else { return Ok(()); };
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        // Drive the DFA with the walk, tracking true history.
        let mut state = dpi_automaton::StateId::START;
        let mut prev = None;
        let mut prev2 = None;
        for &b in &walk {
            let expected = dfa.step(state, b);
            let got = red.step(state, b, prev, prev2);
            prop_assert_eq!(got, expected);
            prev2 = prev;
            prev = Some(b);
            state = expected;
        }
    }
}
