//! Overload-resilient DPI service runtime: per-core flow workers with
//! backpressure, a graceful-degradation ladder, ruleset hot-swap, and
//! worker fault isolation.
//!
//! The matcher stack below this module answers "how fast can one core
//! scan bytes it is handed?". A resident inspection node must answer a
//! harder question: what happens in the moments it *cannot* keep up —
//! bursts past line rate, elephant flows skewing one queue, a ruleset
//! reload mid-stream, a worker fault. This module makes those moments
//! part of the contract instead of undefined behaviour:
//!
//! - **Steering.** Packets are steered RSS-style by a hash of their
//!   [`FlowKey`] onto bounded per-worker queues, so one flow's bytes
//!   always reach one worker in order and per-flow scanner state never
//!   crosses cores.
//! - **Backpressure and shedding.** When a worker's queue fills, the
//!   producer sheds **whole flows**, never individual packets: a flow
//!   picked for shedding stays shed until pressure clears, then resumes
//!   with an explicit [`FlowState::reset_at`] resync at its next
//!   segment — a stream is either scanned contiguously or visibly cut,
//!   never silently corrupted. Every shed byte is counted.
//! - **Degradation ladder.** Under sustained queue pressure a worker
//!   descends [`FidelityTier::Exact`] → [`FidelityTier::TwoStage`] →
//!   [`FidelityTier::FlagOnly`], with hysteresis in both directions, and
//!   climbs back automatically when the queue drains. Per-tier fidelity
//!   is documented on [`FidelityTier`]; per-tier scanned bytes are
//!   counted so a capture's effective fidelity is auditable after the
//!   fact.
//! - **Hot-swap.** A new ruleset compiles into a fresh [`RulesetArena`]
//!   off the worker threads, then flips in by [`Arc`] swap; each flow's
//!   scan state lazily regenerates at its current stream offset on next
//!   delivery (boundary-local loss, counted). A failed build rolls back
//!   to the old arena — the service never runs ruleless.
//! - **Fault isolation.** A panicking worker is caught at the batch
//!   boundary ([`std::panic::catch_unwind`] in the threaded runtime),
//!   its flow table is rebuilt, and its flows re-materialize on their
//!   next segment — the reassembler's budget rule skips the gap the
//!   dead table took with it and counts the loss as skipped holes —
//!   boundary-local loss, counted, instead of a dead core.
//!
//! Two drivers share the same `WorkerCore` logic: [`Service`] runs
//! real threads with blocking queues and wall-clock latency histograms;
//! [`ServiceSim`] runs the identical per-worker state machine in
//! lockstep on one thread, driven by a seeded [`FaultPlan`] so every
//! recovery path above is deterministic and property-testable.
//!
//! # Fidelity ladder
//!
//! | Tier | Engine | Fidelity |
//! |------|--------|----------|
//! | [`Exact`](FidelityTier::Exact) | sharded full-set matcher | exact: every occurrence of every pattern |
//! | [`TwoStage`](FidelityTier::TwoStage) | stage-1 sweep + windowed exact replay | exact (byte-equivalent to `Exact`), cheaper on clean traffic, dearer on flag-dense traffic |
//! | [`FlagOnly`](FidelityTier::FlagOnly) | stage-1 sweep only | reported matches all true; windowed-family occurrences missed but **counted** as [`suspect_flags`](TwoStageStats::suspect_flags) |
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dpi_automaton::PatternSet;
//! use dpi_core::service::{RulesetArena, ServiceConfig, ServiceSim};
//! use dpi_core::{FlowKey, TwoStageConfig};
//!
//! let set = PatternSet::new(["attack-sig", "evil-payload"])?;
//! let arena = Arc::new(RulesetArena::build(&set, &TwoStageConfig::with_cores(1), 1)?);
//! let mut sim = ServiceSim::new(arena, ServiceConfig::with_workers(2))?;
//! sim.offer(FlowKey(7), 0, b"xx attack-sig yy", 1);
//! sim.pump();
//! let report = sim.finish();
//! assert_eq!(report.matches.len(), 1);
//! assert_eq!(report.stats.offered_bytes, report.stats.admitted_bytes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashSet;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use dpi_automaton::{Match, PatternSet, ShardPlanError};

use crate::flow::{FlowConfigError, FlowKey, FlowMatch, FlowSegment, FlowState, FlowTable};
use crate::protocol::{ProtoConfig, ProtoFlow, ProtocolStats};
use crate::reassembly::{ReassemblyConfig, ReassemblyConfigError, StreamFlow};
use crate::sharded::{ShardedMatcher, ShardedScanState, ShardedScratch};
use crate::two_stage::{TwoStageConfig, TwoStageMatcher, TwoStageScratch, TwoStageState, TwoStageStats};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Degradation-ladder thresholds, in queue-depth units, with hysteresis
/// in batches. A worker samples its queue depth once per batch it takes:
/// depths at or above `high_water` accumulate toward a descent, depths
/// at or below `low_water` accumulate toward a recovery, and the two
/// counters reset each other — so a queue oscillating across one
/// threshold cannot flap the tier.
#[derive(Debug, Clone, Copy)]
pub struct LadderConfig {
    /// Queue depth at or above which a batch counts as overload.
    pub high_water: usize,
    /// Queue depth at or below which a batch counts as calm.
    pub low_water: usize,
    /// Consecutive overload batches before descending one tier.
    pub descend_after: u32,
    /// Consecutive calm batches before ascending one tier (recovery is
    /// deliberately slower than descent: set this higher than
    /// `descend_after` to avoid thrashing at the boundary).
    pub ascend_after: u32,
}

impl Default for LadderConfig {
    fn default() -> LadderConfig {
        LadderConfig {
            high_water: 48,
            low_water: 8,
            descend_after: 4,
            ascend_after: 16,
        }
    }
}

/// Load-shedding thresholds. Shedding starts when a queue is full
/// (depth ≥ `queue_cap`) and a shed flow resumes only once its queue's
/// depth has fallen to `resume_below` — the gap is the hysteresis that
/// stops a flow from resuming into a queue that is about to refuse its
/// next packet.
#[derive(Debug, Clone, Copy)]
pub struct ShedConfig {
    /// Queue depth a shed flow's queue must fall to before the flow is
    /// readmitted (with a resync marker).
    pub resume_below: usize,
}

impl Default for ShedConfig {
    fn default() -> ShedConfig {
        ShedConfig { resume_below: 16 }
    }
}

/// Full service-runtime configuration. Construct with
/// [`ServiceConfig::with_workers`] and adjust fields; every constructor
/// of [`Service`] / [`ServiceSim`] validates with
/// [`ServiceConfig::validate`] so a malformed config is an error value,
/// never a worker panic.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker (and queue) count.
    pub workers: usize,
    /// Bounded queue capacity, in packets, per worker.
    pub queue_cap: usize,
    /// Most packets a worker drains per batch (one ladder observation
    /// per batch).
    pub batch: usize,
    /// Per-worker flow-table capacity (flows).
    pub flow_capacity: usize,
    /// Flow-table associativity.
    pub flow_ways: usize,
    /// Per-flow reassembly budget and overlap policy.
    pub reassembly: ReassemblyConfig,
    /// Per-flow protocol detect/normalize stage. Workers pipeline
    /// reassemble → detect/normalize → scan; disable (or rely on the
    /// fail-open downgrades) to get plain raw-byte scanning. The
    /// service always scans every lane with the full ruleset, so
    /// `scoped` is forced off by the workers — honoring it would only
    /// reset tier-scanner history at classification (see the invariant
    /// on [`ProtoConfig::scoped`]).
    pub protocol: ProtoConfig,
    /// Degradation-ladder thresholds.
    pub ladder: LadderConfig,
    /// Load-shedding thresholds.
    pub shed: ShedConfig,
}

impl ServiceConfig {
    /// Defaults for `workers` cores: 256-deep queues, 64-packet
    /// batches, 4096 flows per worker, default reassembly/ladder/shed
    /// settings.
    pub fn with_workers(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            queue_cap: 256,
            batch: 64,
            flow_capacity: 4096,
            flow_ways: crate::flow::DEFAULT_WAYS,
            reassembly: ReassemblyConfig::default(),
            protocol: ProtoConfig::default(),
            ladder: LadderConfig::default(),
            shed: ShedConfig::default(),
        }
    }

    /// Rejects configurations that cannot produce a working runtime.
    pub fn validate(&self) -> Result<(), ServiceConfigError> {
        if self.workers == 0 {
            return Err(ServiceConfigError::ZeroWorkers);
        }
        if self.queue_cap == 0 {
            return Err(ServiceConfigError::ZeroQueue);
        }
        if self.batch == 0 {
            return Err(ServiceConfigError::ZeroBatch);
        }
        if self.ladder.low_water >= self.ladder.high_water {
            return Err(ServiceConfigError::LadderInverted);
        }
        if self.ladder.descend_after == 0 || self.ladder.ascend_after == 0 {
            return Err(ServiceConfigError::LadderZeroHysteresis);
        }
        if self.shed.resume_below >= self.queue_cap {
            return Err(ServiceConfigError::ShedInverted);
        }
        // Borrow the flow/reassembly validators so their error cases
        // stay in one place.
        FlowTable::try_with_ways(self.flow_capacity, self.flow_ways, NullState)?;
        ReassemblyConfig::try_new(self.reassembly.budget)?;
        Ok(())
    }
}

/// Zero-sized [`FlowState`] used only to run [`FlowTable`]'s config
/// validation without building real scanner states.
#[derive(Clone, Copy)]
struct NullState;

impl FlowState for NullState {
    fn reset(&mut self) {}
    fn reset_at(&mut self, _offset: u64) {}
}

/// A [`ServiceConfig`] that can never produce a working runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceConfigError {
    /// `workers` was zero.
    ZeroWorkers,
    /// `queue_cap` was zero — every packet would shed.
    ZeroQueue,
    /// `batch` was zero — workers could never drain.
    ZeroBatch,
    /// `ladder.low_water >= ladder.high_water` — hysteresis band empty
    /// or inverted.
    LadderInverted,
    /// A ladder hysteresis count was zero — the tier would flap on
    /// every batch.
    LadderZeroHysteresis,
    /// `shed.resume_below >= queue_cap` — a shed flow would resume into
    /// a full queue.
    ShedInverted,
    /// The per-worker flow table config was invalid.
    Flow(FlowConfigError),
    /// The per-flow reassembly config was invalid.
    Reassembly(ReassemblyConfigError),
}

impl std::fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceConfigError::ZeroWorkers => write!(f, "worker count must be non-zero"),
            ServiceConfigError::ZeroQueue => write!(f, "queue capacity must be non-zero"),
            ServiceConfigError::ZeroBatch => write!(f, "batch size must be non-zero"),
            ServiceConfigError::LadderInverted => {
                write!(f, "ladder low_water must be below high_water")
            }
            ServiceConfigError::LadderZeroHysteresis => {
                write!(f, "ladder hysteresis counts must be non-zero")
            }
            ServiceConfigError::ShedInverted => {
                write!(f, "shed resume_below must be below queue_cap")
            }
            ServiceConfigError::Flow(e) => write!(f, "flow table: {e}"),
            ServiceConfigError::Reassembly(e) => write!(f, "reassembly: {e}"),
        }
    }
}

impl std::error::Error for ServiceConfigError {}

impl From<FlowConfigError> for ServiceConfigError {
    fn from(e: FlowConfigError) -> ServiceConfigError {
        ServiceConfigError::Flow(e)
    }
}

impl From<ReassemblyConfigError> for ServiceConfigError {
    fn from(e: ReassemblyConfigError) -> ServiceConfigError {
        ServiceConfigError::Reassembly(e)
    }
}

// ---------------------------------------------------------------------------
// Arena, tiers, per-flow state
// ---------------------------------------------------------------------------

/// One generation of compiled rules: the exact sharded matcher (the
/// [`Exact`](FidelityTier::Exact) tier) and the two-stage matcher (the
/// [`TwoStage`](FidelityTier::TwoStage) and
/// [`FlagOnly`](FidelityTier::FlagOnly) tiers) built from the same
/// pattern set. Workers hold it behind an [`Arc`]; a hot-swap builds
/// the next generation off-thread and flips the pointer, so scan paths
/// never wait on a build.
#[derive(Debug)]
pub struct RulesetArena {
    exact: ShardedMatcher,
    two: TwoStageMatcher,
    generation: u64,
}

impl RulesetArena {
    /// Compiles both engines from `set`. `generation` must be strictly
    /// greater than any arena this one will replace — per-flow scan
    /// states carry the generation they were built against and
    /// regenerate when it no longer matches.
    pub fn build(
        set: &PatternSet,
        config: &TwoStageConfig,
        generation: u64,
    ) -> Result<RulesetArena, ShardPlanError> {
        let exact = ShardedMatcher::build(set, &config.exact)?;
        let two = TwoStageMatcher::build(set, config)?;
        Ok(RulesetArena {
            exact,
            two,
            generation,
        })
    }

    /// The exact-tier engine.
    pub fn exact(&self) -> &ShardedMatcher {
        &self.exact
    }

    /// The two-stage engine (also serves the flag-only tier).
    pub fn two_stage(&self) -> &TwoStageMatcher {
        &self.two
    }

    /// This arena's generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// The graceful-degradation ladder, cheapest-fidelity last. See the
/// [module docs](self) for the per-tier fidelity table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FidelityTier {
    /// Single-stage sharded exact matching: every byte through every
    /// shard.
    Exact,
    /// Two-stage matching: byte-equivalent results to `Exact`, with
    /// stage-2 cost only on flagged windows.
    TwoStage,
    /// Stage-1 sweep only: true-positive matches still emitted,
    /// windowed-family occurrences recorded as suspect flags instead of
    /// verified.
    FlagOnly,
}

impl FidelityTier {
    /// Index into per-tier counter arrays.
    fn index(self) -> usize {
        match self {
            FidelityTier::Exact => 0,
            FidelityTier::TwoStage => 1,
            FidelityTier::FlagOnly => 2,
        }
    }

    /// The next-cheaper tier (self when already at the bottom).
    fn lower(self) -> FidelityTier {
        match self {
            FidelityTier::Exact => FidelityTier::TwoStage,
            _ => FidelityTier::FlagOnly,
        }
    }

    /// The next-richer tier (self when already at the top).
    fn higher(self) -> FidelityTier {
        match self {
            FidelityTier::FlagOnly => FidelityTier::TwoStage,
            _ => FidelityTier::Exact,
        }
    }
}

/// Per-flow scanner state that survives tier moves and ruleset swaps:
/// the concrete engine state plus the arena generation it was built
/// against. Materialization is lazy — a flow touched after a swap or an
/// `Exact`↔`TwoStage` tier move rebuilds its state *at its current
/// stream offset* on next delivery ([`FlowState::reset_at`] semantics:
/// boundary-local loss only, and the rebuild is counted). Moves between
/// `TwoStage` and `FlagOnly` share one state and lose nothing.
#[derive(Debug, Clone)]
pub struct TierScan {
    generation: u64,
    kind: TierKind,
}

#[derive(Debug, Clone)]
enum TierKind {
    /// Not yet materialized against any arena; scanning will resume at
    /// `at`.
    Fresh { at: u64 },
    Exact(ShardedScanState),
    // Boxed: a two-stage state is several times the size of the other
    // variants, and a TierScan is per-flow — millions of resident
    // flows would otherwise all pay the largest variant's footprint.
    Two(Box<TwoStageState>),
}

impl TierScan {
    /// A state that materializes on first delivery.
    pub fn fresh() -> TierScan {
        TierScan {
            generation: 0,
            kind: TierKind::Fresh { at: 0 },
        }
    }

    /// Stream offset consumed so far.
    pub fn offset(&self) -> u64 {
        match &self.kind {
            TierKind::Fresh { at } => *at,
            TierKind::Exact(s) => s.offset(),
            TierKind::Two(s) => s.offset(),
        }
    }
}

impl FlowState for TierScan {
    fn reset(&mut self) {
        self.generation = 0;
        self.kind = TierKind::Fresh { at: 0 };
    }

    fn reset_at(&mut self, offset: u64) {
        match &mut self.kind {
            TierKind::Fresh { at } => *at = offset,
            TierKind::Exact(s) => s.reset_at(offset),
            TierKind::Two(s) => FlowState::reset_at(s.as_mut(), offset),
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// One worker's cumulative counters (survive panics and restarts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Segments processed.
    pub packets: u64,
    /// Bytes delivered to the scan stage per tier, indexed
    /// `[exact, two_stage, flag_only]`. A byte counts where it was
    /// delivered, after reassembly — so the sum is delivered bytes, not
    /// admitted bytes (duplicates are trimmed, buffered bytes count when
    /// delivered or flushed). The protocol stage's ledger
    /// ([`ProtocolStats`]) splits the same total into normalized vs
    /// raw-scanned bytes.
    pub tier_bytes: [u64; 3],
    /// Matches emitted.
    pub matches: u64,
    /// Window-opening flags recorded unverified by flag-only scans —
    /// the honest record of what the degraded tier did not check.
    pub suspect_flags: u64,
    /// Ladder descents.
    pub degrades: u64,
    /// Ladder ascents.
    pub recoveries: u64,
    /// Per-flow states rebuilt at their stream offset (tier move or
    /// ruleset swap).
    pub state_rebuilds: u64,
    /// Mid-stream resyncs: flows repositioned by a shed-resume marker.
    pub resyncs: u64,
    /// Ruleset swaps installed.
    pub swaps: u64,
    /// Panics caught (threaded runtime) or injected (simulator).
    pub panics: u64,
    /// Flow tables rebuilt after a panic.
    pub restarts: u64,
    /// Bytes known lost to panics: the panicking item's payload plus
    /// the rebuilt table's buffered reassembly bytes.
    pub panic_lost_bytes: u64,
    /// Protocol detect/normalize counters (ledger, per-protocol flow
    /// counts, fail-open downgrades). `delivered_bytes` here equals the
    /// tier-bytes sum: every byte a worker hands its scanner first
    /// passes through the detect stage.
    pub protocol: ProtocolStats,
}

impl WorkerStats {
    fn absorb(&mut self, other: &WorkerStats) {
        self.packets += other.packets;
        for i in 0..3 {
            self.tier_bytes[i] += other.tier_bytes[i];
        }
        self.matches += other.matches;
        self.suspect_flags += other.suspect_flags;
        self.degrades += other.degrades;
        self.recoveries += other.recoveries;
        self.state_rebuilds += other.state_rebuilds;
        self.resyncs += other.resyncs;
        self.swaps += other.swaps;
        self.panics += other.panics;
        self.restarts += other.restarts;
        self.panic_lost_bytes += other.panic_lost_bytes;
        self.protocol.absorb(&other.protocol);
    }
}

/// Whole-service counters: the steering/shedding side plus every
/// worker's [`WorkerStats`] absorbed. The load-shedding identity
/// `offered == admitted + shed` holds for both packets and bytes at all
/// times; after a full drain with in-order traffic,
/// `admitted_bytes == scanned_bytes() + dup/hole/panic losses`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Packets presented to [`Service::offer`] / [`ServiceSim::offer`].
    pub offered_packets: u64,
    /// Bytes presented.
    pub offered_bytes: u64,
    /// Packets refused by the shed gate.
    pub shed_packets: u64,
    /// Bytes refused by the shed gate.
    pub shed_bytes: u64,
    /// Flows newly placed into shedding.
    pub shed_flows: u64,
    /// Shed flows readmitted (each carries a resync marker).
    pub resumed_flows: u64,
    /// Packets enqueued.
    pub admitted_packets: u64,
    /// Bytes enqueued.
    pub admitted_bytes: u64,
    /// Successful ruleset swaps.
    pub swaps: u64,
    /// Ruleset builds that failed and rolled back.
    pub failed_swaps: u64,
    /// Flows resident across all workers at report time.
    pub flows_resident: u64,
    /// Out-of-order bytes still buffered at report time.
    pub buffered_bytes: u64,
    /// Reassembly counters aggregated across every worker's flow table,
    /// including tables retired by panic recovery (their monotonic
    /// counters survive; their held-bytes gauge is accounted as
    /// [`panic_lost_bytes`](WorkerStats::panic_lost_bytes) instead).
    /// This is the other half of the zero-silent-drops ledger: admitted
    /// bytes not delivered to a scanner show up here as duplicates,
    /// skipped holes, or buffered residue — never as nothing.
    pub reassembly: crate::reassembly::ReassemblyStats,
    /// Every worker's counters, absorbed.
    pub workers: WorkerStats,
}

impl ServiceStats {
    /// Total bytes delivered to a scanner at any tier.
    pub fn scanned_bytes(&self) -> u64 {
        self.workers.tier_bytes.iter().sum()
    }
}

/// Adds `src`'s monotonic reassembly counters into `dst` (gauge summed
/// only when `include_gauge` — a retired table's held bytes are lost,
/// not held).
fn add_reassembly(
    dst: &mut crate::reassembly::ReassemblyStats,
    src: &crate::reassembly::ReassemblyStats,
    include_gauge: bool,
) {
    dst.segments += src.segments;
    dst.segments_buffered += src.segments_buffered;
    dst.bytes_buffered += src.bytes_buffered;
    if include_gauge {
        dst.bytes_held += src.bytes_held;
    }
    dst.bytes_held_peak = dst.bytes_held_peak.max(src.bytes_held_peak);
    dst.dup_bytes += src.dup_bytes;
    dst.overlap_bytes += src.overlap_bytes;
    dst.overlap_conflicts += src.overlap_conflicts;
    dst.holes_skipped += src.holes_skipped;
    dst.hole_bytes += src.hole_bytes;
    dst.budget_drops += src.budget_drops;
}

// ---------------------------------------------------------------------------
// Worker core (shared by the simulator and the threaded runtime)
// ---------------------------------------------------------------------------

/// One unit of work on a worker queue.
enum Item {
    /// A flow segment. `resync` marks the first segment of a flow
    /// readmitted after shedding.
    Segment {
        key: FlowKey,
        seq: u64,
        time: u64,
        resync: bool,
        payload: Box<[u8]>,
    },
    /// Install a new ruleset generation.
    Swap(Arc<RulesetArena>),
    /// Injected fault: the worker panics when it dequeues this (the
    /// simulator models the panic; the threaded runtime really
    /// unwinds).
    Panic,
}

impl Item {
    fn payload_len(&self) -> usize {
        match self {
            Item::Segment { payload, .. } => payload.len(),
            _ => 0,
        }
    }
}

/// The per-worker state machine: arena, tier ladder, flow table,
/// scratches, counters. Both runtimes drive exactly this logic, so the
/// deterministic simulator exercises the same recovery paths the
/// threaded service runs.
struct WorkerCore {
    arena: Arc<RulesetArena>,
    tier: FidelityTier,
    table: FlowTable<StreamFlow<ProtoFlow<TierScan>>>,
    sharded_scratch: ShardedScratch,
    two_scratch: TwoStageScratch,
    ladder: LadderConfig,
    overload_batches: u32,
    calm_batches: u32,
    flow_capacity: usize,
    flow_ways: usize,
    reassembly: ReassemblyConfig,
    protocol: ProtoConfig,
    /// Reassembly counters of tables retired by panic recovery.
    retired_reassembly: crate::reassembly::ReassemblyStats,
    stats: WorkerStats,
    matches: Vec<FlowMatch>,
}

impl WorkerCore {
    fn new(arena: Arc<RulesetArena>, config: &ServiceConfig) -> Result<WorkerCore, ServiceConfigError> {
        // The worker sink scans every lane with the one full-ruleset
        // tier engine, so `scoped` must be off (see the invariant on
        // ProtoConfig::scoped): honoring a user-set flag would reset
        // tier-scanner history at classification for a lane change
        // that never happens.
        let protocol = ProtoConfig {
            scoped: false,
            ..config.protocol
        };
        let template = StreamFlow::new(
            config.reassembly,
            ProtoFlow::new(TierScan::fresh(), protocol),
        );
        let table = FlowTable::try_with_ways(config.flow_capacity, config.flow_ways, template)?;
        let sharded_scratch = arena.exact.scratch();
        let two_scratch = arena.two.scratch();
        Ok(WorkerCore {
            arena,
            tier: FidelityTier::Exact,
            table,
            sharded_scratch,
            two_scratch,
            ladder: config.ladder,
            overload_batches: 0,
            calm_batches: 0,
            flow_capacity: config.flow_capacity,
            flow_ways: config.flow_ways,
            reassembly: config.reassembly,
            protocol,
            retired_reassembly: crate::reassembly::ReassemblyStats::default(),
            stats: WorkerStats::default(),
            matches: Vec::new(),
        })
    }

    /// One ladder observation: called with the queue depth seen when
    /// the worker takes a batch.
    fn observe_queue(&mut self, depth: usize) {
        if depth >= self.ladder.high_water {
            self.calm_batches = 0;
            self.overload_batches += 1;
            if self.overload_batches >= self.ladder.descend_after {
                self.overload_batches = 0;
                let next = self.tier.lower();
                if next != self.tier {
                    self.tier = next;
                    self.stats.degrades += 1;
                }
            }
        } else if depth <= self.ladder.low_water {
            self.overload_batches = 0;
            self.calm_batches += 1;
            if self.calm_batches >= self.ladder.ascend_after {
                self.calm_batches = 0;
                let next = self.tier.higher();
                if next != self.tier {
                    self.tier = next;
                    self.stats.recoveries += 1;
                }
            }
        } else {
            self.overload_batches = 0;
            self.calm_batches = 0;
        }
    }

    fn process(&mut self, item: Item) {
        match item {
            Item::Segment {
                key,
                seq,
                time,
                resync,
                payload,
            } => self.ingest(key, seq, time, resync, &payload),
            Item::Swap(arena) => self.install(arena),
            // The drivers intercept Panic before calling process; a
            // Panic reaching here (e.g. via a future driver) is treated
            // as the real thing.
            Item::Panic => panic!("injected worker fault"),
        }
    }

    fn ingest(&mut self, key: FlowKey, seq: u64, time: u64, resync: bool, payload: &[u8]) {
        self.stats.packets += 1;
        let tier = self.tier;
        // A flow scanned while degraded to FlagOnly bypasses
        // normalization permanently (counted `tier_bypassed`): the
        // cheap tier exists to shed work, and a later upgrade must not
        // resume a parser that missed bytes.
        let bypass = tier == FidelityTier::FlagOnly;
        let arena = Arc::clone(&self.arena);
        let generation = arena.generation;
        let mut rebuilds = 0u64;
        let mut tier_bytes = [0u64; 3];
        let mut suspects = 0u64;
        let mut proto_stats = ProtocolStats::default();
        let sharded_scratch = &mut self.sharded_scratch;
        let two_scratch = &mut self.two_scratch;
        let before = self.matches.len();
        let _outcome = self.table.ingest_segment_at(
            FlowSegment { key, seq, payload },
            time,
            resync,
            |proto: &mut ProtoFlow<TierScan>, chunk: &[u8], out: &mut Vec<Match>| {
                tier_bytes[tier.index()] += chunk.len() as u64;
                // Every lane maps to the same full-ruleset tier engine:
                // the service's normalization win is decode (catching
                // boundary-split signatures), not scoping.
                proto.deliver(
                    chunk,
                    bypass,
                    &mut proto_stats,
                    |_lane, scan: &mut TierScan, bytes: &[u8], out: &mut Vec<Match>| {
                        materialize(&arena, generation, tier, scan, &mut rebuilds);
                        match (&mut scan.kind, tier) {
                            (TierKind::Exact(state), _) => {
                                arena.exact.scan_chunk_into(state, bytes, sharded_scratch, out);
                            }
                            (TierKind::Two(state), FidelityTier::FlagOnly) => {
                                let s0 = flow_stats(state).suspect_flags;
                                arena.two.scan_chunk_flag_only(state, bytes, two_scratch, out);
                                suspects += flow_stats(state).suspect_flags - s0;
                            }
                            (TierKind::Two(state), _) => {
                                arena.two.scan_chunk_into(state, bytes, two_scratch, out);
                            }
                            (TierKind::Fresh { .. }, _) => unreachable!("materialized above"),
                        }
                    },
                    out,
                );
            },
            &mut self.matches,
        );
        if resync {
            self.stats.resyncs += 1;
        }
        self.stats.state_rebuilds += rebuilds;
        for (total, batch) in self.stats.tier_bytes.iter_mut().zip(tier_bytes) {
            *total += batch;
        }
        self.stats.suspect_flags += suspects;
        self.stats.protocol.absorb(&proto_stats);
        self.stats.matches += (self.matches.len() - before) as u64;
    }

    fn install(&mut self, arena: Arc<RulesetArena>) {
        // Scratches are sized to the arena's shard plan; rebuild them
        // with it. Flow states regenerate lazily on next delivery.
        self.sharded_scratch = arena.exact.scratch();
        self.two_scratch = arena.two.scratch();
        self.arena = arena;
        self.stats.swaps += 1;
    }

    /// Post-panic recovery: count what was knowably lost, rebuild the
    /// flow table (the panic may have left a mid-scan state
    /// inconsistent), keep the arena, counters, and collected matches.
    /// Flows re-materialize on their next segment; the never-readmitted
    /// gap surfaces as reassembly hole-skips, not silent loss.
    fn recover(&mut self) {
        self.stats.panics += 1;
        self.stats.restarts += 1;
        self.stats.panic_lost_bytes += self.table.stats().reassembly.bytes_held;
        add_reassembly(
            &mut self.retired_reassembly,
            &self.table.stats().reassembly,
            false,
        );
        let template = StreamFlow::new(
            self.reassembly,
            ProtoFlow::new(TierScan::fresh(), self.protocol),
        );
        self.table = FlowTable::with_ways(self.flow_capacity, self.flow_ways, template);
        self.sharded_scratch = self.arena.exact.scratch();
        self.two_scratch = self.arena.two.scratch();
    }

    /// End-of-stream drain: flush every flow's reassembler through the
    /// scanner at the current tier, then drain two-stage pending
    /// windows, appending everything to the worker's match log.
    fn finish(&mut self) {
        let tier = self.tier;
        let bypass = tier == FidelityTier::FlagOnly;
        let arena = Arc::clone(&self.arena);
        let generation = arena.generation;
        let mut rebuilds = 0u64;
        let mut tier_bytes = [0u64; 3];
        let mut suspects = 0u64;
        let mut proto_stats = ProtocolStats::default();
        let sharded_scratch = &mut self.sharded_scratch;
        let two_scratch = &mut self.two_scratch;
        let before = self.matches.len();
        let mut flushed = Vec::new();
        self.table.flush_flows(
            |proto: &mut ProtoFlow<TierScan>, chunk: &[u8], out: &mut Vec<Match>| {
                tier_bytes[tier.index()] += chunk.len() as u64;
                proto.deliver(
                    chunk,
                    bypass,
                    &mut proto_stats,
                    |_lane, scan: &mut TierScan, bytes: &[u8], out: &mut Vec<Match>| {
                        materialize(&arena, generation, tier, scan, &mut rebuilds);
                        match (&mut scan.kind, tier) {
                            (TierKind::Exact(state), _) => {
                                arena.exact.scan_chunk_into(state, bytes, sharded_scratch, out);
                            }
                            (TierKind::Two(state), FidelityTier::FlagOnly) => {
                                let s0 = flow_stats(state).suspect_flags;
                                arena.two.scan_chunk_flag_only(state, bytes, two_scratch, out);
                                suspects += flow_stats(state).suspect_flags - s0;
                            }
                            (TierKind::Two(state), _) => {
                                arena.two.scan_chunk_into(state, bytes, two_scratch, out);
                            }
                            (TierKind::Fresh { .. }, _) => unreachable!("materialized above"),
                        }
                    },
                    out,
                );
            },
            &mut flushed,
        );
        self.matches.append(&mut flushed);
        // Two-stage states may hold verified matches behind the merge
        // watermark; drain them per flow.
        let mut tail = Vec::new();
        let matches = &mut self.matches;
        self.table.for_each_flow(|key, flow| {
            if let TierKind::Two(state) = &mut flow.scan.scan.kind {
                tail.clear();
                arena.two.finish_flow(state, &mut tail);
                matches.extend(tail.iter().map(|&m| FlowMatch { key, matched: m }));
            }
        });
        self.stats.state_rebuilds += rebuilds;
        for (total, batch) in self.stats.tier_bytes.iter_mut().zip(tier_bytes) {
            *total += batch;
        }
        self.stats.suspect_flags += suspects;
        self.stats.protocol.absorb(&proto_stats);
        self.stats.matches += (self.matches.len() - before) as u64;
    }
}

/// Shorthand: a flow's cumulative two-stage counters.
fn flow_stats(state: &TwoStageState) -> TwoStageStats {
    state.stats()
}

/// Ensures `scan` holds a state for (`arena`, `tier`): rebuilds it at
/// the flow's current stream offset when the generation or the engine
/// family changed. `TwoStage` and `FlagOnly` share the `Two` state, so
/// ladder moves between them rebuild nothing.
fn materialize(
    arena: &RulesetArena,
    generation: u64,
    tier: FidelityTier,
    scan: &mut TierScan,
    rebuilds: &mut u64,
) {
    let wants_exact = tier == FidelityTier::Exact;
    let compatible = scan.generation == generation
        && match &scan.kind {
            TierKind::Fresh { .. } => false,
            TierKind::Exact(_) => wants_exact,
            TierKind::Two(_) => !wants_exact,
        };
    if compatible {
        return;
    }
    let at = scan.offset();
    let was_live = !matches!(scan.kind, TierKind::Fresh { .. });
    scan.kind = if wants_exact {
        let mut state = arena.exact.flow_state();
        if at > 0 {
            state.reset_at(at);
        }
        TierKind::Exact(state)
    } else {
        let mut state = arena.two.flow_state();
        if at > 0 {
            FlowState::reset_at(&mut state, at);
        }
        TierKind::Two(Box::new(state))
    };
    scan.generation = generation;
    if was_live {
        *rebuilds += 1;
    }
}

// ---------------------------------------------------------------------------
// Steering and shedding (producer side)
// ---------------------------------------------------------------------------

/// SplitMix64 over the folded key halves — independent of the flow
/// table's set-index hash (a different finalizing constant), so queue
/// steering and set placement do not correlate.
fn steer_hash(key: FlowKey) -> u64 {
    let mut z = (key.0 as u64) ^ ((key.0 >> 64) as u64) ^ 0xD6E8_FEB8_6659_FD93;
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^ (z >> 32)
}

/// Producer-side per-queue shed gate: tracks which flows are currently
/// shed and applies the full/resume hysteresis.
struct ShedGate {
    shedding: HashSet<u128>,
}

impl ShedGate {
    fn new() -> ShedGate {
        ShedGate {
            shedding: HashSet::new(),
        }
    }

    /// Decides one packet given the queue's current depth.
    fn admit(&mut self, key: FlowKey, depth: usize, cap: usize, resume_below: usize) -> Gate {
        if self.shedding.contains(&key.0) {
            if depth <= resume_below {
                self.shedding.remove(&key.0);
                Gate::Resync
            } else {
                Gate::Shed { new_flow: false }
            }
        } else if depth >= cap {
            self.shedding.insert(key.0);
            Gate::Shed { new_flow: true }
        } else {
            Gate::Admit
        }
    }
}

enum Gate {
    Admit,
    Resync,
    Shed { new_flow: bool },
}

/// Steering + shedding front end shared by both runtimes. The caller
/// supplies the target queue's depth; this updates the offered/shed
/// counters and says what to do with the packet.
struct Steer {
    gates: Vec<ShedGate>,
    queue_cap: usize,
    resume_below: usize,
    offered_packets: u64,
    offered_bytes: u64,
    shed_packets: u64,
    shed_bytes: u64,
    shed_flows: u64,
    resumed_flows: u64,
    admitted_packets: u64,
    admitted_bytes: u64,
    swaps: u64,
    failed_swaps: u64,
}

impl Steer {
    fn new(config: &ServiceConfig) -> Steer {
        Steer {
            gates: (0..config.workers).map(|_| ShedGate::new()).collect(),
            queue_cap: config.queue_cap,
            resume_below: config.shed.resume_below,
            offered_packets: 0,
            offered_bytes: 0,
            shed_packets: 0,
            shed_bytes: 0,
            shed_flows: 0,
            resumed_flows: 0,
            admitted_packets: 0,
            admitted_bytes: 0,
            swaps: 0,
            failed_swaps: 0,
        }
    }

    fn worker_of(&self, key: FlowKey) -> usize {
        (steer_hash(key) % self.gates.len() as u64) as usize
    }

    /// Counts the packet and returns `Some(resync)` to admit it to its
    /// queue, `None` when it was shed.
    fn offer(&mut self, worker: usize, key: FlowKey, len: usize, depth: usize) -> Option<bool> {
        self.offered_packets += 1;
        self.offered_bytes += len as u64;
        match self.gates[worker].admit(key, depth, self.queue_cap, self.resume_below) {
            Gate::Admit => {
                self.admitted_packets += 1;
                self.admitted_bytes += len as u64;
                Some(false)
            }
            Gate::Resync => {
                self.resumed_flows += 1;
                self.admitted_packets += 1;
                self.admitted_bytes += len as u64;
                Some(true)
            }
            Gate::Shed { new_flow } => {
                if new_flow {
                    self.shed_flows += 1;
                }
                self.shed_packets += 1;
                self.shed_bytes += len as u64;
                None
            }
        }
    }

    fn stats_into(&self, stats: &mut ServiceStats) {
        stats.offered_packets = self.offered_packets;
        stats.offered_bytes = self.offered_bytes;
        stats.shed_packets = self.shed_packets;
        stats.shed_bytes = self.shed_bytes;
        stats.shed_flows = self.shed_flows;
        stats.resumed_flows = self.resumed_flows;
        stats.admitted_packets = self.admitted_packets;
        stats.admitted_bytes = self.admitted_bytes;
        stats.swaps = self.swaps;
        stats.failed_swaps = self.failed_swaps;
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// One injected fault, fired when the offered-packet counter reaches
/// its trigger index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Worker `.0` panics at the point this reaches the front of its
    /// queue (in-band, so delivery order around the fault is exact).
    WorkerPanic(usize),
    /// Worker `.0` stalls for `.1` simulator steps — the queue keeps
    /// filling, which is how queue-full shedding is provoked
    /// deterministically.
    SlowWorker(usize, u32),
    /// The next hot-swap's build fails (the simulator sabotages the
    /// build config), exercising rollback.
    BuildFailure,
    /// All subsequent offered timestamps are skewed by `.0` (clamped at
    /// zero) — the clock-tolerance fault.
    ClockSkew(i64),
}

/// A deterministic schedule of injected faults: `(offered-packet
/// index, fault)` pairs, fired in order as [`ServiceSim::offer`] passes
/// each index. Build one explicitly or derive a pseudo-random plan from
/// a seed with [`FaultPlan::from_seed`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An explicit schedule (sorted by trigger index internally).
    pub fn new(mut events: Vec<(u64, FaultKind)>) -> FaultPlan {
        events.sort_by_key(|&(at, _)| at);
        FaultPlan { events }
    }

    /// `count` pseudo-random faults over the first `horizon` offered
    /// packets, derived from `seed` (SplitMix64) across all four fault
    /// kinds — the property-test generator.
    pub fn from_seed(seed: u64, count: usize, horizon: u64, workers: usize) -> FaultPlan {
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let at = next() % horizon.max(1);
            let worker = (next() % workers.max(1) as u64) as usize;
            let kind = match next() % 4 {
                0 => FaultKind::WorkerPanic(worker),
                1 => FaultKind::SlowWorker(worker, (next() % 8 + 1) as u32),
                2 => FaultKind::BuildFailure,
                _ => FaultKind::ClockSkew((next() % 1_000) as i64 - 500),
            };
            events.push((at, kind));
        }
        FaultPlan::new(events)
    }
}

// ---------------------------------------------------------------------------
// Deterministic simulator
// ---------------------------------------------------------------------------

/// What a finished run produced: final counters, every match tagged
/// with its flow (per-worker logs concatenated; within one flow,
/// stream order), and the per-worker tier each worker ended at.
#[derive(Debug)]
pub struct ServiceReport {
    /// Final counters.
    pub stats: ServiceStats,
    /// Every match, tagged with its flow.
    pub matches: Vec<FlowMatch>,
    /// The fidelity tier each worker ended at.
    pub final_tiers: Vec<FidelityTier>,
    /// Wall-clock per-packet latency (empty for simulator runs).
    pub latency: LatencyHistogram,
}

/// The deterministic single-threaded service harness: the same
/// `WorkerCore` state machine as the threaded [`Service`], driven in
/// lockstep with seeded fault injection. One `step()` gives every
/// worker one batch; `offer` applies steering, shedding, and the fault
/// plan. No wall clock, no threads — identical inputs give identical
/// outputs, so every robustness property is testable.
pub struct ServiceSim {
    config: ServiceConfig,
    arena: Arc<RulesetArena>,
    workers: Vec<WorkerCore>,
    queues: Vec<VecDeque<Item>>,
    stalled: Vec<u32>,
    steer: Steer,
    plan: FaultPlan,
    next_event: usize,
    offered_index: u64,
    skew: i64,
    build_failure_armed: bool,
}

impl ServiceSim {
    /// A simulator with no fault plan.
    pub fn new(arena: Arc<RulesetArena>, config: ServiceConfig) -> Result<ServiceSim, ServiceConfigError> {
        ServiceSim::with_faults(arena, config, FaultPlan::none())
    }

    /// A simulator driven by `plan`.
    pub fn with_faults(
        arena: Arc<RulesetArena>,
        config: ServiceConfig,
        plan: FaultPlan,
    ) -> Result<ServiceSim, ServiceConfigError> {
        config.validate()?;
        let workers = (0..config.workers)
            .map(|_| WorkerCore::new(Arc::clone(&arena), &config))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ServiceSim {
            steer: Steer::new(&config),
            queues: (0..config.workers).map(|_| VecDeque::new()).collect(),
            stalled: vec![0; config.workers],
            workers,
            arena,
            config,
            plan,
            next_event: 0,
            offered_index: 0,
            skew: 0,
            build_failure_armed: false,
        })
    }

    /// Which worker `key` steers to.
    pub fn worker_of(&self, key: FlowKey) -> usize {
        self.steer.worker_of(key)
    }

    /// The tier worker `worker` currently runs at.
    pub fn worker_tier(&self, worker: usize) -> FidelityTier {
        self.workers[worker].tier
    }

    /// How many workers have installed arena generation `generation`
    /// (or newer). The swap-drain experiment measures how many extra
    /// steps a stalled worker stretches the in-band broadcast: the
    /// drain is complete when this reaches the worker count.
    pub fn workers_at_generation(&self, generation: u64) -> usize {
        self.workers
            .iter()
            .filter(|w| w.arena.generation >= generation)
            .count()
    }

    /// Offers one segment to the service: fires any fault-plan events
    /// due at this offered-packet index, applies clock skew, steers,
    /// and either enqueues or sheds. Returns `true` when the segment
    /// was admitted.
    pub fn offer(&mut self, key: FlowKey, seq: u64, payload: &[u8], time: u64) -> bool {
        while self.next_event < self.plan.events.len()
            && self.plan.events[self.next_event].0 <= self.offered_index
        {
            let (_, kind) = self.plan.events[self.next_event];
            self.next_event += 1;
            match kind {
                FaultKind::WorkerPanic(w) => {
                    let w = w % self.queues.len();
                    self.queues[w].push_back(Item::Panic);
                }
                FaultKind::SlowWorker(w, steps) => {
                    let w = w % self.stalled.len();
                    self.stalled[w] += steps;
                }
                FaultKind::BuildFailure => self.build_failure_armed = true,
                FaultKind::ClockSkew(delta) => self.skew += delta,
            }
        }
        self.offered_index += 1;
        let time = (time as i64).saturating_add(self.skew).max(0) as u64;
        let worker = self.steer.worker_of(key);
        let depth = self.queues[worker].len();
        match self.steer.offer(worker, key, payload.len(), depth) {
            Some(resync) => {
                self.queues[worker].push_back(Item::Segment {
                    key,
                    seq,
                    time,
                    resync,
                    payload: payload.into(),
                });
                true
            }
            None => false,
        }
    }

    /// One lockstep round: every non-stalled worker observes its queue
    /// depth (driving the ladder) and drains up to one batch.
    pub fn step(&mut self) {
        for w in 0..self.workers.len() {
            if self.stalled[w] > 0 {
                self.stalled[w] -= 1;
                continue;
            }
            let depth = self.queues[w].len();
            if depth == 0 {
                self.workers[w].observe_queue(0);
                continue;
            }
            self.workers[w].observe_queue(depth);
            for _ in 0..self.config.batch {
                let Some(item) = self.queues[w].pop_front() else {
                    break;
                };
                if matches!(item, Item::Panic) {
                    // The simulator models the unwind: the item is lost
                    // and recovery runs, exactly as the threaded
                    // runtime's catch_unwind path.
                    self.workers[w].recover();
                } else {
                    self.workers[w].process(item);
                }
            }
        }
    }

    /// Steps until every queue is empty and every stall has elapsed.
    pub fn pump(&mut self) {
        while self.queues.iter().any(|q| !q.is_empty()) || self.stalled.iter().any(|&s| s > 0) {
            self.step();
        }
    }

    /// Hot-swaps the ruleset: builds a next-generation
    /// [`RulesetArena`] (synchronously here — the simulator has no
    /// threads to move the build off of) and broadcasts it in-band to
    /// every worker queue, so each worker installs it exactly after the
    /// packets admitted before the swap. On build failure the old arena
    /// stays installed and the error is returned — rollback is the
    /// no-op. Returns the new generation on success.
    ///
    /// An armed [`FaultKind::BuildFailure`] sabotages this build's
    /// budget so the failure path is reachable deterministically.
    pub fn hot_swap(
        &mut self,
        set: &PatternSet,
        config: &TwoStageConfig,
    ) -> Result<u64, ShardPlanError> {
        let mut config = *config;
        if self.build_failure_armed {
            self.build_failure_armed = false;
            // A budget no real pattern fits: the build must fail.
            config.exact.budget_bytes = 1;
        }
        let generation = self.arena.generation + 1;
        match RulesetArena::build(set, &config, generation) {
            Ok(arena) => {
                let arena = Arc::new(arena);
                self.arena = Arc::clone(&arena);
                for queue in &mut self.queues {
                    // Control-plane item: bypasses the shed gate's
                    // packet capacity.
                    queue.push_back(Item::Swap(Arc::clone(&arena)));
                }
                self.steer.swaps += 1;
                Ok(generation)
            }
            Err(e) => {
                self.steer.failed_swaps += 1;
                Err(e)
            }
        }
    }

    /// Snapshot of the counters mid-run (workers absorbed, gauges
    /// current).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = ServiceStats::default();
        self.steer.stats_into(&mut stats);
        for worker in &self.workers {
            stats.workers.absorb(&worker.stats);
            stats.flows_resident += worker.table.len() as u64;
            stats.buffered_bytes += worker.table.buffered_bytes() as u64;
            add_reassembly(&mut stats.reassembly, &worker.table.stats().reassembly, true);
            add_reassembly(&mut stats.reassembly, &worker.retired_reassembly, false);
        }
        stats
    }

    /// Drains every queue, flushes every flow, and returns the final
    /// report. The simulator is spent afterwards.
    pub fn finish(mut self) -> ServiceReport {
        self.pump();
        for worker in &mut self.workers {
            worker.finish();
        }
        let mut stats = ServiceStats::default();
        self.steer.stats_into(&mut stats);
        let mut matches = Vec::new();
        let mut final_tiers = Vec::with_capacity(self.workers.len());
        for worker in &mut self.workers {
            stats.workers.absorb(&worker.stats);
            stats.flows_resident += worker.table.len() as u64;
            stats.buffered_bytes += worker.table.buffered_bytes() as u64;
            add_reassembly(&mut stats.reassembly, &worker.table.stats().reassembly, true);
            add_reassembly(&mut stats.reassembly, &worker.retired_reassembly, false);
            matches.append(&mut worker.matches);
            final_tiers.push(worker.tier);
        }
        ServiceReport {
            stats,
            matches,
            final_tiers,
            latency: LatencyHistogram::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Log₂-bucketed nanosecond histogram: 64 buckets, constant-time
/// record, quantiles answered at bucket granularity (≤ 2× relative
/// error) — cheap enough to stamp every packet.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros()).min(63) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The latency (in nanoseconds, bucket upper bound) at quantile
    /// `q` in `[0, 1]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Merges `other`'s observations into this histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for i in 0..64 {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
    }
}

// ---------------------------------------------------------------------------
// Threaded runtime
// ---------------------------------------------------------------------------

struct QueueInner {
    items: VecDeque<(Item, Instant)>,
    closed: bool,
}

/// A bounded MPSC channel with condvar wakeup. The producer side never
/// blocks — capacity pressure is resolved by the shed gate *before*
/// push — and the consumer blocks only when empty.
struct SharedQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl SharedQueue {
    fn new() -> SharedQueue {
        SharedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    fn push(&self, item: Item) {
        let mut inner = self.inner.lock().unwrap();
        inner.items.push_back((item, Instant::now()));
        drop(inner);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Blocks until at least one item (or close), then drains up to
    /// `batch` items. Returns the observed depth and the batch; `None`
    /// means closed and drained.
    fn take_batch(&self, batch: usize) -> Option<(usize, Vec<(Item, Instant)>)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let depth = inner.items.len();
                let take = depth.min(batch);
                let items: Vec<_> = inner.items.drain(..take).collect();
                return Some((depth, items));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }
}

/// The resident threaded runtime: `workers` OS threads, each owning one
/// `WorkerCore` and one bounded queue; the caller's thread is the
/// producer (steering + shedding) and the control plane (hot-swap).
/// Worker panics are caught per item ([`catch_unwind`]) and recovered
/// in place — the thread is its own watchdog, so one poisoned packet
/// costs one flow table, not a core.
///
/// Per-packet wall-clock latency (enqueue → scan complete) is recorded
/// in a per-worker [`LatencyHistogram`] and merged into the final
/// [`ServiceReport`].
pub struct Service {
    config: ServiceConfig,
    arena: Arc<RulesetArena>,
    queues: Vec<Arc<SharedQueue>>,
    handles: Vec<std::thread::JoinHandle<(WorkerCore, LatencyHistogram)>>,
    steer: Steer,
}

impl Service {
    /// Starts the runtime: validates `config`, spawns the workers, and
    /// returns the producer handle.
    pub fn start(arena: Arc<RulesetArena>, config: ServiceConfig) -> Result<Service, ServiceConfigError> {
        config.validate()?;
        let queues: Vec<_> = (0..config.workers)
            .map(|_| Arc::new(SharedQueue::new()))
            .collect();
        let mut handles = Vec::with_capacity(config.workers);
        for queue in &queues {
            let queue = Arc::clone(queue);
            let mut core = WorkerCore::new(Arc::clone(&arena), &config)?;
            let batch = config.batch;
            handles.push(std::thread::spawn(move || {
                let mut latency = LatencyHistogram::new();
                while let Some((depth, items)) = queue.take_batch(batch) {
                    core.observe_queue(depth);
                    for (item, enqueued) in items {
                        let lost = item.payload_len() as u64;
                        let is_segment = matches!(item, Item::Segment { .. });
                        let outcome = catch_unwind(AssertUnwindSafe(|| core.process(item)));
                        if outcome.is_err() {
                            core.stats.panic_lost_bytes += lost;
                            core.recover();
                        } else if is_segment {
                            latency.record(enqueued.elapsed().as_nanos() as u64);
                        }
                    }
                }
                core.finish();
                (core, latency)
            }));
        }
        Ok(Service {
            steer: Steer::new(&config),
            queues,
            handles,
            arena,
            config,
        })
    }

    /// Which worker `key` steers to.
    pub fn worker_of(&self, key: FlowKey) -> usize {
        self.steer.worker_of(key)
    }

    /// Offers one segment: steers, consults the shed gate against the
    /// live queue depth, and enqueues or sheds. Returns `true` when
    /// admitted. Never blocks.
    pub fn offer(&mut self, key: FlowKey, seq: u64, payload: &[u8], time: u64) -> bool {
        let worker = self.steer.worker_of(key);
        let depth = self.queues[worker].depth();
        match self.steer.offer(worker, key, payload.len(), depth) {
            Some(resync) => {
                self.queues[worker].push(Item::Segment {
                    key,
                    seq,
                    time,
                    resync,
                    payload: payload.into(),
                });
                true
            }
            None => false,
        }
    }

    /// Hot-swaps the ruleset. The build runs on the calling (control)
    /// thread — off every worker thread, which keep scanning the old
    /// generation until the swap item reaches them in-band. On build
    /// failure the old arena stays live and the error is returned.
    /// Returns the new generation on success.
    pub fn hot_swap(
        &mut self,
        set: &PatternSet,
        config: &TwoStageConfig,
    ) -> Result<u64, ShardPlanError> {
        let generation = self.arena.generation + 1;
        match RulesetArena::build(set, config, generation) {
            Ok(arena) => {
                let arena = Arc::new(arena);
                self.arena = Arc::clone(&arena);
                for queue in &self.queues {
                    queue.push(Item::Swap(Arc::clone(&arena)));
                }
                self.steer.swaps += 1;
                Ok(generation)
            }
            Err(e) => {
                self.steer.failed_swaps += 1;
                Err(e)
            }
        }
    }

    /// The broadcast half of [`Service::hot_swap`] for callers that
    /// built (or cached) the [`RulesetArena`] somewhere else — another
    /// thread, ahead of time, a warm standby. Costs only the in-band
    /// queue broadcast on this thread; build failures never reach this
    /// method because the caller already holds a finished arena. The
    /// arena's generation should differ from the live one, or workers
    /// will treat resident flow states as already current.
    pub fn install_arena(&mut self, arena: Arc<RulesetArena>) {
        self.arena = Arc::clone(&arena);
        for queue in &self.queues {
            queue.push(Item::Swap(Arc::clone(&arena)));
        }
        self.steer.swaps += 1;
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Closes every queue, joins every worker (each flushes its flows
    /// first), and returns the final report.
    pub fn shutdown(mut self) -> ServiceReport {
        for queue in &self.queues {
            queue.close();
        }
        let mut stats = ServiceStats::default();
        self.steer.stats_into(&mut stats);
        let mut matches = Vec::new();
        let mut final_tiers = Vec::new();
        let mut latency = LatencyHistogram::new();
        for handle in self.handles.drain(..) {
            let (mut core, worker_latency) = handle
                .join()
                .expect("worker threads catch their own panics");
            stats.workers.absorb(&core.stats);
            stats.flows_resident += core.table.len() as u64;
            stats.buffered_bytes += core.table.buffered_bytes() as u64;
            add_reassembly(&mut stats.reassembly, &core.table.stats().reassembly, true);
            add_reassembly(&mut stats.reassembly, &core.retired_reassembly, false);
            matches.append(&mut core.matches);
            final_tiers.push(core.tier);
            latency.merge(&worker_latency);
        }
        ServiceReport {
            stats,
            matches,
            final_tiers,
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::PatternSet;

    fn arena() -> Arc<RulesetArena> {
        let set = PatternSet::new(["attack-sig", "evil-payload", "he"]).unwrap();
        Arc::new(RulesetArena::build(&set, &TwoStageConfig::with_cores(1), 1).unwrap())
    }

    #[test]
    fn config_validation_rejects_each_degenerate_knob() {
        let ok = ServiceConfig::with_workers(2);
        assert!(ok.validate().is_ok());
        let mut c = ok;
        c.workers = 0;
        assert_eq!(c.validate(), Err(ServiceConfigError::ZeroWorkers));
        let mut c = ok;
        c.queue_cap = 0;
        assert_eq!(c.validate(), Err(ServiceConfigError::ZeroQueue));
        let mut c = ok;
        c.batch = 0;
        assert_eq!(c.validate(), Err(ServiceConfigError::ZeroBatch));
        let mut c = ok;
        c.ladder.low_water = c.ladder.high_water;
        assert_eq!(c.validate(), Err(ServiceConfigError::LadderInverted));
        let mut c = ok;
        c.ladder.ascend_after = 0;
        assert_eq!(c.validate(), Err(ServiceConfigError::LadderZeroHysteresis));
        let mut c = ok;
        c.shed.resume_below = c.queue_cap;
        assert_eq!(c.validate(), Err(ServiceConfigError::ShedInverted));
        let mut c = ok;
        c.flow_capacity = 0;
        assert_eq!(
            c.validate(),
            Err(ServiceConfigError::Flow(FlowConfigError::ZeroCapacity))
        );
        let mut c = ok;
        c.reassembly = ReassemblyConfig::new(4096);
        c.reassembly.budget = 0;
        assert_eq!(
            c.validate(),
            Err(ServiceConfigError::Reassembly(ReassemblyConfigError::ZeroBudget))
        );
    }

    #[test]
    fn steering_is_stable_and_in_range() {
        let arena = arena();
        let sim = ServiceSim::new(arena, ServiceConfig::with_workers(4)).unwrap();
        for i in 0..256u128 {
            let key = FlowKey(i * 0x1234_5678_9ABC_DEF1);
            let w = sim.worker_of(key);
            assert!(w < 4);
            assert_eq!(w, sim.worker_of(key), "steering must be a pure function");
        }
    }

    #[test]
    fn latency_histogram_quantiles_are_monotonic() {
        let mut h = LatencyHistogram::new();
        for n in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..10 {
                h.record(n);
            }
        }
        assert_eq!(h.count(), 60);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        assert!((1_000..=2_048).contains(&p50));
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.count(), 120);
        assert_eq!(merged.quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn sim_scans_a_split_flow_exactly_once() {
        let arena = arena();
        let mut sim = ServiceSim::new(Arc::clone(&arena), ServiceConfig::with_workers(2)).unwrap();
        let key = FlowKey(42);
        // "attack-sig" split across two segments, delivered out of
        // order to exercise the reassembler under the service.
        sim.offer(key, 6, b"-sig tail", 2);
        sim.offer(key, 0, b"attack", 1);
        let report = sim.finish();
        assert_eq!(report.matches.len(), 1);
        assert_eq!(report.matches[0].key, key);
        assert_eq!(report.matches[0].matched.end, 10);
        let s = report.stats;
        assert_eq!(s.offered_packets, 2);
        assert_eq!(s.shed_packets, 0);
        assert_eq!(s.admitted_bytes, s.offered_bytes);
        assert_eq!(s.scanned_bytes(), s.admitted_bytes);
    }

    #[test]
    fn worker_panic_is_isolated_in_threads() {
        let arena = arena();
        let mut config = ServiceConfig::with_workers(1);
        config.queue_cap = 512;
        let mut service = Service::start(Arc::clone(&arena), config).unwrap();
        let key = FlowKey(9);
        assert!(service.offer(key, 0, b"xx attack", 1));
        // Inject a real panic through the queue, then keep feeding the
        // same flow: the worker must survive and resync.
        service.queues[0].push(Item::Panic);
        assert!(service.offer(key, 9, b"-sig yy attack-sig", 2));
        let report = service.shutdown();
        assert_eq!(report.stats.workers.panics, 1);
        assert_eq!(report.stats.workers.restarts, 1);
        // The straddling occurrence may be lost with the table; the
        // fully-post-restart occurrence must be found.
        assert!(report
            .matches
            .iter()
            .any(|m| m.key == key && m.matched.end == 27));
    }
}
