//! # dpi-core
//!
//! The primary contribution of "Ultra-High Throughput String Matching for
//! Deep Packet Inspection" (Kennedy, Wang, Liu & Liu, DATE 2010): memory
//! reduction of the full Aho-Corasick move-function DFA through **default
//! transition pointers** (DTPs).
//!
//! The full DFA guarantees one state lookup per input byte but stores an
//! enormous number of transition pointers, almost all of which point at a
//! few states near the start state. This crate removes those pointers from
//! per-state storage and replaces them with a shared 256-row
//! [`DefaultLut`]: per input character value, one depth-1 default, up to 4
//! depth-2 defaults (compared against the previous input byte) and 1
//! depth-3 default (compared against the previous two input bytes). On the
//! paper's Snort-derived rulesets this removes over 96 % of stored
//! pointers (Table II) while preserving *exact* DFA equivalence — verified
//! here exhaustively by [`ReducedAutomaton::verify_against`] — and, unlike
//! fail-pointer schemes, still consumes exactly one character per cycle.
//!
//! ## Quick example
//!
//! ```
//! use dpi_automaton::{Dfa, MultiMatcher, PatternSet};
//! use dpi_core::{DtpConfig, DtpMatcher, ReducedAutomaton};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let dfa = Dfa::build(&set);
//! let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
//!
//! // Figure 2(C): a single stored pointer remains (avg 0.1 per state).
//! assert_eq!(reduced.stored_pointers(), 1);
//! // ... and matching behaviour is unchanged.
//! assert!(reduced.verify_against(&dfa).is_none());
//! let matches = DtpMatcher::new(&reduced, &set).find_all(b"ushers");
//! assert_eq!(matches.len(), 3);
//! # Ok::<(), dpi_automaton::PatternSetError>(())
//! ```
//!
//! ## Software fast path
//!
//! [`ReducedAutomaton`] + [`DtpMatcher`] are the *reference* runtime:
//! faithful to the build-time structure, easy to verify, deliberately
//! simple. Production scanning goes through the **compiled** layer
//! instead: [`CompiledAutomaton::compile`] flattens the reduced automaton
//! once into pointer-free parallel arrays — a CSR transition arena with
//! dense-row escalation, sentinel-padded branch-free default-transition
//! compare tables, and CSR match outputs — and [`CompiledMatcher`] scans
//! over it with a reusable match buffer ([`CompiledMatcher::scan_into`]),
//! a streaming visitor, and early-exit `is_match`/`count` paths.
//! [`BatchScanner`] additionally interleaves N packets round-robin through
//! independent state registers, the software mirror of the paper's
//! parallel engines (measured honestly, software lanes contend for one
//! cache where hardware engines own their ports — see its docs).
//!
//! ## Scaling across cores
//!
//! The measured lesson above picks the multi-core design: rather than
//! interleaving lanes through one big automaton, [`ShardedMatcher`]
//! splits the *pattern set* (prefix-grouped, cost-modeled against a
//! per-core cache budget — [`PatternSet::plan_shards`]), compiles one
//! small [`CompiledAutomaton`] per shard, and scans payloads across
//! shards on scoped threads, merging matches back to global pattern ids
//! in canonical order. That is the software analogue of the paper's
//! per-block memories: each core owns its automaton the way each block
//! owns its RAM. See the [`sharded`] module docs for the two scan shapes
//! (single payload fan-out vs per-flow batches).
//!
//! [`PatternSet::plan_shards`]: dpi_automaton::PatternSet::plan_shards
//!
//! ```
//! use dpi_automaton::{Dfa, PatternSet};
//! use dpi_core::{CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
//! let compiled = CompiledAutomaton::compile(&reduced);
//! let matcher = CompiledMatcher::new(&compiled, &set);
//! let mut matches = Vec::new();
//! matcher.scan_into(b"ushers", &mut matches); // no per-scan allocation
//! assert_eq!(matches.len(), 3);
//! # Ok::<(), dpi_automaton::PatternSetError>(())
//! ```
//!
//! The compiled engine is byte-for-byte state-equivalent to [`DtpMatcher`]
//! (and hence to the full DFA) — asserted by the differential property
//! suites in `tests/equivalence.rs` and `tests/compiled_engine.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
pub mod flow;
mod lookup_table;
mod matcher;
mod proptests;
pub mod protocol;
pub mod reassembly;
mod reduce;
pub mod service;
pub mod sharded;
mod stats;
pub mod two_stage;

pub use compiled::{
    BatchScanner, CompiledAutomaton, CompiledMatcher, DENSE_ROW_THRESHOLD, HIST_NONE,
    OUTPUT_FLAG, STATE_MASK,
};
pub use flow::{
    FlowConfigError, FlowKey, FlowLookup, FlowMatch, FlowPacket, FlowSegment, FlowState,
    FlowTable, FlowTableStats, DEFAULT_WAYS,
};
pub use lookup_table::{DefaultLut, Depth2Entry, Depth3Entry, DtpConfig, LutRow};
pub use matcher::DtpMatcher;
pub use protocol::{
    Lane, LaneMatcher, ProtoConfig, ProtoFlow, ProtocolId, ProtocolStats, ScopedRuleset,
    PROBE_MAX, TAG_ANY, TAG_HTTP, TAG_TLS,
};
pub use reassembly::{
    FlowReassembler, OverlapPolicy, ReassemblyConfig, ReassemblyConfigError, ReassemblyStats,
    StreamFlow,
};
pub use reduce::{ReducedAutomaton, ReductionMismatch, StoredTransitions};
pub use service::{
    FaultKind, FaultPlan, FidelityTier, LadderConfig, LatencyHistogram, RulesetArena, Service,
    ServiceConfig, ServiceConfigError, ServiceReport, ServiceSim, ServiceStats, ShedConfig,
    TierScan, WorkerStats,
};
pub use sharded::{
    ShardedConfig, ShardedMatcher, ShardedScanState, ShardedScratch, StreamScratch,
};
pub use stats::{ReductionReport, SplitReductionReport};
pub use two_stage::{TwoStageConfig, TwoStageMatcher, TwoStageScratch, TwoStageState, TwoStageStats};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DefaultLut>();
        assert_send_sync::<ReducedAutomaton>();
        assert_send_sync::<ReductionReport>();
        assert_send_sync::<DtpConfig>();
        assert_send_sync::<CompiledAutomaton>();
        assert_send_sync::<ShardedMatcher>();
        assert_send_sync::<ShardedConfig>();
    }
}
