//! # dpi-core
//!
//! The primary contribution of "Ultra-High Throughput String Matching for
//! Deep Packet Inspection" (Kennedy, Wang, Liu & Liu, DATE 2010): memory
//! reduction of the full Aho-Corasick move-function DFA through **default
//! transition pointers** (DTPs).
//!
//! The full DFA guarantees one state lookup per input byte but stores an
//! enormous number of transition pointers, almost all of which point at a
//! few states near the start state. This crate removes those pointers from
//! per-state storage and replaces them with a shared 256-row
//! [`DefaultLut`]: per input character value, one depth-1 default, up to 4
//! depth-2 defaults (compared against the previous input byte) and 1
//! depth-3 default (compared against the previous two input bytes). On the
//! paper's Snort-derived rulesets this removes over 96 % of stored
//! pointers (Table II) while preserving *exact* DFA equivalence — verified
//! here exhaustively by [`ReducedAutomaton::verify_against`] — and, unlike
//! fail-pointer schemes, still consumes exactly one character per cycle.
//!
//! ## Quick example
//!
//! ```
//! use dpi_automaton::{Dfa, MultiMatcher, PatternSet};
//! use dpi_core::{DtpConfig, DtpMatcher, ReducedAutomaton};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let dfa = Dfa::build(&set);
//! let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
//!
//! // Figure 2(C): a single stored pointer remains (avg 0.1 per state).
//! assert_eq!(reduced.stored_pointers(), 1);
//! // ... and matching behaviour is unchanged.
//! assert!(reduced.verify_against(&dfa).is_none());
//! let matches = DtpMatcher::new(&reduced, &set).find_all(b"ushers");
//! assert_eq!(matches.len(), 3);
//! # Ok::<(), dpi_automaton::PatternSetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lookup_table;
mod matcher;
mod proptests;
mod reduce;
mod stats;

pub use lookup_table::{DefaultLut, Depth2Entry, Depth3Entry, DtpConfig, LutRow};
pub use matcher::DtpMatcher;
pub use reduce::{ReducedAutomaton, ReductionMismatch, StoredTransitions};
pub use stats::{ReductionReport, SplitReductionReport};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DefaultLut>();
        assert_send_sync::<ReducedAutomaton>();
        assert_send_sync::<ReductionReport>();
        assert_send_sync::<DtpConfig>();
    }
}
