//! Adversary-tolerant TCP reassembly in front of the scan core.
//!
//! Every streaming path so far ([`ScanState`], the
//! [`FlowTable`](crate::FlowTable)) assumes segments arrive **in order**:
//! the defining streaming property — any packetization scans identically
//! to the whole payload — only holds for the byte stream the scanner
//! actually sees. Real TCP traffic reorders, retransmits, overlaps and
//! drops segments, and all four are classic IDS evasion levers: an
//! attacker who can make the monitor see a different byte stream than
//! the endpoint slips patterns through, and one who can make the monitor
//! buffer without bound takes it down. This module is the layer that
//! closes both holes, under three hard rules:
//!
//! - **strict per-flow budget** — a [`FlowReassembler`] never holds more
//!   than [`ReassemblyConfig::budget`] out-of-order bytes. Budget
//!   pressure degrades to *hole-skip* (below), never to allocation.
//!   There is no hidden queue of segment descriptors either: buffered
//!   bytes live in one contiguous window and covered intervals are a
//!   short sorted list bounded by the budget.
//! - **explicit overlap policy** — when a segment's bytes overlap data
//!   already buffered, [`OverlapPolicy`] decides which bytes survive
//!   ([`OverlapPolicy::FirstWins`] by default, matching most modern
//!   stacks' behaviour for data already accepted). Overlapping bytes
//!   whose *content disagrees* are counted
//!   ([`ReassemblyStats::overlap_conflicts`]) — a conflicting overlap is
//!   precisely the signature of an evasion attempt, so it must be
//!   observable even though the policy resolves it silently.
//! - **boundary-local loss on hole-skip** — when a hole (missing
//!   segment) can no longer be waited out, the reassembler abandons it:
//!   it advances past the gap and resets the scanner at the resume point
//!   via [`FlowState::reset_at`]. Masked history means only matches
//!   **overlapping the skipped bytes** can be lost; every occurrence
//!   fully before or fully after the hole still reports, at its exact
//!   stream-absolute offset. This is the same guarantee (and the same
//!   mechanism) the flow table already pins for eviction, extended to
//!   packet loss.
//!
//! Sequence space here is the **relative byte offset from flow start**
//! (`u64`) — the caller maps TCP sequence numbers to it (subtract the
//! ISN and un-wrap); tests and generators use relative offsets directly.
//!
//! ## Delivery model
//!
//! [`FlowReassembler::ingest`] takes one segment and a scan closure. It
//! delivers bytes to the closure **in order, exactly once**: in-order
//! segments pass straight through without copying (the fast path — an
//! in-order flow never touches the buffer), out-of-order segments are
//! buffered in the window until the hole before them fills or is
//! skipped. Stale bytes (at or below the delivery point) are clipped as
//! retransmit/duplicate traffic. The scanner's `offset` therefore always
//! equals the flow's delivery point, which is what keeps match `end`
//! offsets sequence-absolute across reordering and skips.
//!
//! [`StreamFlow`] packages a reassembler with a scanner state so a
//! [`FlowTable`](crate::FlowTable) can hold both per flow — see
//! [`FlowTable::ingest_segments`](crate::FlowTable::ingest_segments) for
//! the table-level ingest path and the new
//! [`FlowTableStats`](crate::FlowTableStats) reassembly counters.
//!
//! [`ScanState`]: dpi_automaton::ScanState

use crate::flow::FlowState;
use dpi_automaton::Match;

/// What to do when a segment's bytes overlap bytes already buffered for
/// the same sequence range.
///
/// The enum is `#[non_exhaustive]` by design: real stacks differ
/// (first-wins, last-wins, target-OS profiles à la Snort's
/// `stream5` policy knob), and a deployment must be able to grow
/// variants without breaking downstream matches. Only the overlapping
/// *range* is policy-resolved; bytes outside the overlap are always
/// kept.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Bytes that arrived first win; later overlapping bytes are
    /// discarded. Matches the common endpoint behaviour of accepting
    /// the first copy of a sequence range and makes retransmissions
    /// (identical content) naturally idempotent.
    #[default]
    FirstWins,
    /// Bytes that arrived last win; later overlapping bytes overwrite
    /// what was buffered for the same range. Some target stacks resolve
    /// overlaps this way (the behaviour Suricata's `policy` keyword
    /// models per target OS), and an inspector that guards such hosts
    /// must reassemble the stream the way *they* will read it — else an
    /// attacker splits a signature across a conflicting overlap and the
    /// endpoint sees bytes the inspector discarded.
    LastWins,
}

/// A [`ReassemblyConfig`] parameter that can never produce a working
/// reassembler. Returned by [`ReassemblyConfig::try_new`] so resident
/// services can reject malformed configs without panicking a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyConfigError {
    /// The out-of-order budget was zero: no gap could ever be waited
    /// out, so every reordered segment would silently hole-skip.
    ZeroBudget,
}

impl std::fmt::Display for ReassemblyConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyConfigError::ZeroBudget => write!(f, "reassembly budget must be non-zero"),
        }
    }
}

impl std::error::Error for ReassemblyConfigError {}

/// Configuration of one flow's reassembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReassemblyConfig {
    /// Per-flow out-of-order window in bytes: the reassembler buffers
    /// only bytes within `budget` of the current delivery point and
    /// never holds more than `budget` bytes. Must be non-zero.
    pub budget: usize,
    /// Overlap resolution policy (see [`OverlapPolicy`]).
    pub policy: OverlapPolicy,
}

impl ReassemblyConfig {
    /// Default per-flow budget: 64 KiB — a full unscaled TCP receive
    /// window, and small enough that a million hostile flows cost at
    /// most 64 GB *if every one of them maxes its window*, which
    /// [`ReassemblyStats::bytes_held_peak`] makes observable long
    /// before.
    pub const DEFAULT_BUDGET: usize = 64 * 1024;

    /// A config with the given byte budget and the default
    /// ([`OverlapPolicy::FirstWins`]) overlap policy.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero — a zero-budget reassembler could
    /// never buffer an out-of-order byte and every gap would silently
    /// degrade to hole-skip; that is a configuration error, not a
    /// traffic condition.
    pub fn new(budget: usize) -> ReassemblyConfig {
        match Self::try_new(budget) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`ReassemblyConfig::new`]: a zero budget becomes a
    /// [`ReassemblyConfigError`] instead of a panic.
    pub fn try_new(budget: usize) -> Result<ReassemblyConfig, ReassemblyConfigError> {
        if budget == 0 {
            return Err(ReassemblyConfigError::ZeroBudget);
        }
        Ok(ReassemblyConfig {
            budget,
            policy: OverlapPolicy::default(),
        })
    }

    /// The same config with a different overlap policy — the knob a
    /// deployment turns per target-OS profile.
    ///
    /// ```
    /// use dpi_core::{OverlapPolicy, ReassemblyConfig};
    /// let cfg = ReassemblyConfig::new(4096).with_policy(OverlapPolicy::LastWins);
    /// assert_eq!(cfg.policy, OverlapPolicy::LastWins);
    /// ```
    pub fn with_policy(mut self, policy: OverlapPolicy) -> ReassemblyConfig {
        self.policy = policy;
        self
    }
}

impl Default for ReassemblyConfig {
    fn default() -> Self {
        ReassemblyConfig::new(Self::DEFAULT_BUDGET)
    }
}

/// Running reassembly counters (monotonic except the
/// [`bytes_held`](ReassemblyStats::bytes_held) gauge).
///
/// Kept per [`FlowReassembler::ingest`] call site — the
/// [`FlowTable`](crate::FlowTable) ingest path aggregates them into
/// [`FlowTableStats::reassembly`](crate::FlowTableStats::reassembly) so
/// eviction pressure and reassembly pressure are observable in one
/// place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReassemblyStats {
    /// Segments ingested (before any clipping or suppression).
    pub segments: u64,
    /// Segments that contributed at least one byte to the out-of-order
    /// buffer (the in-order fast path never counts here).
    pub segments_buffered: u64,
    /// Bytes copied into the out-of-order buffer, cumulative.
    pub bytes_buffered: u64,
    /// Bytes currently held in out-of-order buffers (gauge; table-level
    /// aggregation subtracts a flow's held bytes when it is evicted).
    pub bytes_held: u64,
    /// High-water mark of [`bytes_held`](ReassemblyStats::bytes_held).
    pub bytes_held_peak: u64,
    /// Bytes clipped as retransmitted / duplicate (at or below the
    /// delivery point).
    pub dup_bytes: u64,
    /// Bytes that overlapped already-buffered data (policy-resolved).
    pub overlap_bytes: u64,
    /// Overlap events where the overlapping **content disagreed** — the
    /// evasion signature. The configured [`OverlapPolicy`] decided which
    /// bytes survived.
    pub overlap_conflicts: u64,
    /// Holes abandoned (sequence gaps skipped instead of filled).
    pub holes_skipped: u64,
    /// Bytes of stream lost to skipped holes.
    pub hole_bytes: u64,
    /// Hole-skips forced by budget pressure specifically (a segment
    /// could not fit the out-of-order window until older gaps were
    /// abandoned). Always ≤ [`holes_skipped`](ReassemblyStats::holes_skipped).
    pub budget_drops: u64,
}

impl ReassemblyStats {
    fn held_delta(&mut self, before: usize, after: usize) {
        self.bytes_held = self.bytes_held + after as u64 - before as u64;
        self.bytes_held_peak = self.bytes_held_peak.max(self.bytes_held);
    }
}

/// One flow's sequence-space tracker and bounded out-of-order buffer.
///
/// The representation is a **contiguous window** anchored at the
/// delivery point `next_seq`: byte `next_seq + i` of the stream lives at
/// `buf[i]`, valid only where some covered interval in `ranges` says so.
/// `ranges` is sorted, disjoint and non-adjacent; between public calls
/// the first covered interval never starts at 0 (data at the delivery
/// point is delivered, not buffered). The window is at most
/// [`ReassemblyConfig::budget`] bytes, which bounds both `buf` and — via
/// at least one uncovered byte between intervals — `ranges`.
///
/// See the [module docs](self) for the delivery model; most callers want
/// [`StreamFlow`] or the
/// [`FlowTable::ingest_segments`](crate::FlowTable::ingest_segments)
/// path instead of driving a raw reassembler.
///
/// # Examples
///
/// ```
/// use dpi_automaton::ScanState;
/// use dpi_core::reassembly::{FlowReassembler, ReassemblyConfig, ReassemblyStats};
///
/// let mut r = FlowReassembler::new(ReassemblyConfig::new(1024));
/// let mut state = ScanState::fresh();
/// let mut delivered = Vec::new();
/// let mut stats = ReassemblyStats::default();
/// // Segment [3..6) arrives before [0..3): buffered, then both deliver
/// // in order once the gap fills.
/// let mut scan = |_s: &mut ScanState, chunk: &[u8], _out: &mut Vec<_>| {
///     delivered.extend_from_slice(chunk)
/// };
/// let mut out = Vec::new();
/// r.ingest(3, b"def", &mut state, &mut scan, &mut out, &mut stats);
/// assert_eq!(r.buffered_bytes(), 3); // nothing delivered yet
/// r.ingest(0, b"abc", &mut state, &mut scan, &mut out, &mut stats);
/// drop(scan);
/// assert_eq!(delivered, b"abcdef");
/// assert_eq!(r.buffered_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct FlowReassembler {
    /// Next sequence offset to deliver (everything below is delivered,
    /// skipped, or lost).
    next_seq: u64,
    /// Window bytes: `buf[i]` holds stream byte `next_seq + i` where
    /// covered.
    buf: Vec<u8>,
    /// Covered intervals `(start, end)` relative to `next_seq`; sorted,
    /// disjoint, non-adjacent.
    ranges: Vec<(usize, usize)>,
    /// Cached sum of interval lengths (the held-bytes gauge).
    held: usize,
    config: ReassemblyConfig,
}

impl FlowReassembler {
    /// A reassembler at sequence offset 0 with nothing buffered.
    pub fn new(config: ReassemblyConfig) -> FlowReassembler {
        FlowReassembler {
            next_seq: 0,
            buf: Vec::new(),
            ranges: Vec::new(),
            held: 0,
            config,
        }
    }

    /// The configuration this reassembler was built with.
    pub fn config(&self) -> ReassemblyConfig {
        self.config
    }

    /// The delivery point: every byte below this sequence offset has
    /// been delivered to the scanner or abandoned by a hole-skip.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Out-of-order bytes currently buffered — by construction always
    /// ≤ [`ReassemblyConfig::budget`], whatever the traffic does.
    pub fn buffered_bytes(&self) -> usize {
        self.held
    }

    /// `true` when a sequence gap is outstanding (buffered data waits
    /// behind a hole).
    pub fn has_hole(&self) -> bool {
        !self.ranges.is_empty()
    }

    /// Returns the reassembler to a fresh flow at offset 0, keeping its
    /// allocations (flow-table slot recycling).
    pub fn reset(&mut self) {
        self.next_seq = 0;
        self.buf.clear();
        self.ranges.clear();
        self.held = 0;
    }

    /// [`FlowReassembler::reset`], but positioned at sequence offset
    /// `seq` (resuming mid-stream, e.g. picking up a flow whose earlier
    /// bytes were never seen).
    pub fn reset_to(&mut self, seq: u64) {
        self.reset();
        self.next_seq = seq;
    }

    /// Ingests one segment: `payload` carries stream bytes
    /// `[seq, seq + payload.len())`. Delivers whatever becomes
    /// deliverable — in order, exactly once — to `scan` (which receives
    /// the scanner `state`, a chunk, and `out` to append matches to),
    /// buffering the rest within the budget window. See the
    /// [module docs](self) for the exact clipping / overlap / hole-skip
    /// behaviour; `stats` counters record each of those events.
    pub fn ingest<S, F>(
        &mut self,
        seq: u64,
        payload: &[u8],
        state: &mut S,
        scan: &mut F,
        out: &mut Vec<Match>,
        stats: &mut ReassemblyStats,
    ) where
        S: FlowState,
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        stats.segments += 1;
        let mut seq = seq;
        let mut data = payload;
        loop {
            // A covered interval at the delivery point (only ever
            // produced mid-loop by an advance below) drains first, so
            // the invariants hold at every other step.
            self.drain(state, scan, out, stats);
            if data.is_empty() {
                return;
            }
            if seq < self.next_seq {
                // Retransmit / duplicate / already-skipped bytes.
                let clip = ((self.next_seq - seq) as usize).min(data.len());
                stats.dup_bytes += clip as u64;
                data = &data[clip..];
                seq += clip as u64;
                continue;
            }
            if seq == self.next_seq {
                // In-order: deliver straight from `payload` (no copy)
                // up to the first buffered byte, if any.
                let direct = self
                    .ranges
                    .first()
                    .map_or(data.len(), |&(s, _)| data.len().min(s));
                scan(state, &data[..direct], out);
                self.advance(direct);
                seq += direct as u64;
                data = &data[direct..];
                if data.is_empty() {
                    continue;
                }
                // The remainder overlaps the first buffered range
                // (which the advance just moved to the delivery point).
                // Policy-compare before that range drains, so a
                // conflicting overlap against about-to-deliver bytes is
                // counted like any other.
                let (_, re) = self.ranges[0];
                let ov = data.len().min(re);
                stats.overlap_bytes += ov as u64;
                if self.buf[..ov] != data[..ov] {
                    stats.overlap_conflicts += 1;
                    match self.config.policy {
                        // First arrival wins: keep the buffered bytes.
                        OverlapPolicy::FirstWins => {}
                        // Last arrival wins: the incoming copy replaces
                        // the buffered (about-to-deliver) bytes.
                        OverlapPolicy::LastWins => {
                            self.buf[..ov].copy_from_slice(&data[..ov]);
                        }
                    }
                }
                data = &data[ov..];
                seq += ov as u64;
                continue;
            }
            // A hole precedes `data`. Budget rule: every buffered byte
            // must land within `budget` of the delivery point. If this
            // segment's tail does not fit, the oldest gap is abandoned
            // (hole-skip) until it does — degrade, never allocate.
            if seq + data.len() as u64 > self.next_seq + self.config.budget as u64 {
                stats.budget_drops += 1;
                let target = self
                    .ranges
                    .first()
                    .map_or(seq, |&(s, _)| (self.next_seq + s as u64).min(seq));
                self.skip_to(target, state, scan, out, stats);
                continue;
            }
            let off = (seq - self.next_seq) as usize;
            self.insert(off, data, stats);
            return;
        }
    }

    /// Abandons every outstanding hole and delivers all buffered data
    /// (end of flow: FIN/RST seen, flow retired, or a test draining the
    /// tail). Each abandoned gap counts as a skipped hole and resets the
    /// scanner at its resume point, exactly like a budget-forced skip.
    pub fn flush<S, F>(
        &mut self,
        state: &mut S,
        scan: &mut F,
        out: &mut Vec<Match>,
        stats: &mut ReassemblyStats,
    ) where
        S: FlowState,
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        while let Some(&(s, _)) = self.ranges.first() {
            let target = self.next_seq + s as u64;
            self.skip_to(target, state, scan, out, stats);
        }
    }

    /// Advances the delivery point past an unfillable gap, resets the
    /// scanner at the resume offset (masking pre-gap history — the
    /// boundary-local-loss mechanism) and delivers anything that became
    /// contiguous.
    fn skip_to<S, F>(
        &mut self,
        target: u64,
        state: &mut S,
        scan: &mut F,
        out: &mut Vec<Match>,
        stats: &mut ReassemblyStats,
    ) where
        S: FlowState,
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        let n = (target - self.next_seq) as usize;
        debug_assert!(n > 0, "skip target must lie beyond the delivery point");
        stats.holes_skipped += 1;
        stats.hole_bytes += n as u64;
        self.advance(n);
        state.reset_at(target);
        self.drain(state, scan, out, stats);
    }

    /// Delivers covered intervals sitting at the delivery point.
    fn drain<S, F>(
        &mut self,
        state: &mut S,
        scan: &mut F,
        out: &mut Vec<Match>,
        stats: &mut ReassemblyStats,
    ) where
        S: FlowState,
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        while let Some(&(s, e)) = self.ranges.first() {
            if s != 0 {
                break;
            }
            self.ranges.remove(0);
            let before = self.held;
            self.held -= e;
            stats.held_delta(before, self.held);
            scan(state, &self.buf[..e], out);
            self.advance(e);
        }
    }

    /// Moves the delivery point forward by `n` window bytes, shifting
    /// the buffer and intervals down.
    fn advance(&mut self, n: usize) {
        self.next_seq += n as u64;
        if n == 0 {
            return;
        }
        if self.ranges.is_empty() {
            // Nothing buffered: drop window contents, keep capacity.
            self.buf.clear();
        } else {
            debug_assert!(self.ranges[0].0 >= n, "advance may not enter a covered range");
            self.buf.copy_within(n.., 0);
            let len = self.buf.len() - n;
            self.buf.truncate(len);
            for r in &mut self.ranges {
                r.0 -= n;
                r.1 -= n;
            }
        }
    }

    /// Copies `data` into the window at `off`, resolving overlaps with
    /// already-buffered bytes per the configured policy, and merges the
    /// covered-interval list.
    fn insert(&mut self, off: usize, data: &[u8], stats: &mut ReassemblyStats) {
        let end = off + data.len();
        debug_assert!(end <= self.config.budget, "insert beyond the budget window");
        if self.buf.len() < end {
            self.buf.resize(end, 0);
        }
        // Walk existing intervals across [off, end): copy into gaps,
        // policy-resolve overlaps (FirstWins: buffered bytes stay).
        let mut new_bytes = 0usize;
        let mut cursor = off;
        for i in 0..self.ranges.len() {
            let (rs, re) = self.ranges[i];
            if re <= cursor {
                continue;
            }
            if rs >= end {
                break;
            }
            if cursor < rs {
                let gap_end = rs.min(end);
                self.buf[cursor..gap_end].copy_from_slice(&data[cursor - off..gap_end - off]);
                new_bytes += gap_end - cursor;
                cursor = gap_end;
            }
            let os = cursor.max(rs);
            let oe = re.min(end);
            if os < oe {
                stats.overlap_bytes += (oe - os) as u64;
                if self.buf[os..oe] != data[os - off..oe - off] {
                    stats.overlap_conflicts += 1;
                    match self.config.policy {
                        // First arrival wins: keep the buffered bytes.
                        OverlapPolicy::FirstWins => {}
                        // Last arrival wins: overwrite the buffered
                        // range with the incoming copy.
                        OverlapPolicy::LastWins => {
                            self.buf[os..oe].copy_from_slice(&data[os - off..oe - off]);
                        }
                    }
                }
                cursor = oe;
            }
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            self.buf[cursor..end].copy_from_slice(&data[cursor - off..]);
            new_bytes += end - cursor;
        }
        if new_bytes > 0 {
            stats.segments_buffered += 1;
            stats.bytes_buffered += new_bytes as u64;
            let before = self.held;
            self.held += new_bytes;
            stats.held_delta(before, self.held);
        }
        // Union [off, end) into the interval list, merging adjacency so
        // disjoint intervals always leave at least one uncovered byte
        // between them (which is what bounds `ranges.len()`).
        let a = self.ranges.partition_point(|r| r.1 < off);
        let b = self.ranges.partition_point(|r| r.0 <= end);
        let mut ns = off;
        let mut ne = end;
        if a < b {
            ns = ns.min(self.ranges[a].0);
            ne = ne.max(self.ranges[b - 1].1);
            self.ranges.drain(a..b);
        }
        self.ranges.insert(a, (ns, ne));
    }
}

/// A flow's complete streaming context: resumable scanner registers plus
/// the reassembler that feeds them in-order bytes. This is the state
/// type to put in a [`FlowTable`](crate::FlowTable) when the ingest path
/// carries raw (possibly reordered) TCP segments instead of an in-order
/// byte stream — see
/// [`FlowTable::ingest_segments`](crate::FlowTable::ingest_segments).
#[derive(Debug, Clone)]
pub struct StreamFlow<S> {
    /// The scanner's resumable registers. Advanced only by delivered
    /// (in-order) bytes, so its `offset` is always the flow's delivery
    /// point.
    pub scan: S,
    seq: FlowReassembler,
}

impl<S: FlowState> StreamFlow<S> {
    /// Wraps a fresh scanner state (e.g. `ScanState::fresh()` or
    /// `ShardedMatcher::flow_state()`) with a reassembler.
    pub fn new(config: ReassemblyConfig, scan: S) -> StreamFlow<S> {
        StreamFlow {
            scan,
            seq: FlowReassembler::new(config),
        }
    }

    /// Read access to the flow's reassembler (delivery point, buffered
    /// bytes, outstanding holes).
    pub fn reassembler(&self) -> &FlowReassembler {
        &self.seq
    }

    /// Ingests one segment — [`FlowReassembler::ingest`] wired to this
    /// flow's scanner state.
    pub fn ingest<F>(
        &mut self,
        seq: u64,
        payload: &[u8],
        scan: &mut F,
        out: &mut Vec<Match>,
        stats: &mut ReassemblyStats,
    ) where
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        self.seq.ingest(seq, payload, &mut self.scan, scan, out, stats);
    }

    /// Flushes the flow — [`FlowReassembler::flush`] wired to this
    /// flow's scanner state.
    pub fn flush<F>(&mut self, scan: &mut F, out: &mut Vec<Match>, stats: &mut ReassemblyStats)
    where
        F: FnMut(&mut S, &[u8], &mut Vec<Match>),
    {
        self.seq.flush(&mut self.scan, scan, out, stats);
    }
}

impl<S: FlowState> FlowState for StreamFlow<S> {
    fn reset(&mut self) {
        self.scan.reset();
        self.seq.reset();
    }

    fn reset_at(&mut self, offset: u64) {
        self.scan.reset_at(offset);
        self.seq.reset_to(offset);
    }

    fn held_bytes(&self) -> usize {
        self.seq.buffered_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::ScanState;

    /// Drives a reassembler with a scan closure that records delivered
    /// bytes and asserts the scanner offset tracks the delivery point.
    struct Harness {
        r: FlowReassembler,
        state: ScanState,
        delivered: Vec<u8>,
        stats: ReassemblyStats,
    }

    impl Harness {
        fn new(budget: usize) -> Harness {
            Harness::with_policy(budget, OverlapPolicy::FirstWins)
        }

        fn with_policy(budget: usize, policy: OverlapPolicy) -> Harness {
            Harness {
                r: FlowReassembler::new(ReassemblyConfig::new(budget).with_policy(policy)),
                state: ScanState::fresh(),
                delivered: Vec::new(),
                stats: ReassemblyStats::default(),
            }
        }

        fn ingest(&mut self, seq: u64, payload: &[u8]) {
            let delivered = &mut self.delivered;
            let mut out = Vec::new();
            let mut scan = |s: &mut ScanState, chunk: &[u8], _o: &mut Vec<Match>| {
                delivered.extend_from_slice(chunk);
                for b in chunk {
                    s.push_byte(*b);
                }
            };
            self.r
                .ingest(seq, payload, &mut self.state, &mut scan, &mut out, &mut self.stats);
            assert!(self.r.buffered_bytes() <= self.r.config().budget);
        }

        fn flush(&mut self) {
            let delivered = &mut self.delivered;
            let mut out = Vec::new();
            let mut scan = |s: &mut ScanState, chunk: &[u8], _o: &mut Vec<Match>| {
                delivered.extend_from_slice(chunk);
                for b in chunk {
                    s.push_byte(*b);
                }
            };
            self.r
                .flush(&mut self.state, &mut scan, &mut out, &mut self.stats);
        }
    }

    #[test]
    fn in_order_fast_path_never_buffers() {
        let mut h = Harness::new(64);
        h.ingest(0, b"abcd");
        h.ingest(4, b"efgh");
        assert_eq!(h.delivered, b"abcdefgh");
        assert_eq!(h.stats.segments_buffered, 0);
        assert_eq!(h.stats.bytes_buffered, 0);
        assert_eq!(h.r.buffered_bytes(), 0);
        assert_eq!(h.r.next_seq(), 8);
        assert_eq!(h.state.offset, 8);
    }

    #[test]
    fn reorder_buffers_then_delivers_in_order() {
        let mut h = Harness::new(64);
        h.ingest(4, b"efgh");
        assert_eq!(h.delivered, b"");
        assert_eq!(h.r.buffered_bytes(), 4);
        assert!(h.r.has_hole());
        h.ingest(0, b"abcd");
        assert_eq!(h.delivered, b"abcdefgh");
        assert_eq!(h.r.buffered_bytes(), 0);
        assert_eq!(h.stats.bytes_held, 0);
        assert_eq!(h.stats.bytes_held_peak, 4);
        assert!(!h.r.has_hole());
    }

    #[test]
    fn retransmits_and_duplicates_are_clipped() {
        let mut h = Harness::new(64);
        h.ingest(0, b"abcd");
        h.ingest(0, b"abcd"); // full duplicate
        h.ingest(2, b"cdef"); // partial retransmit, 2 new bytes
        assert_eq!(h.delivered, b"abcdef");
        assert_eq!(h.stats.dup_bytes, 6);
    }

    #[test]
    fn gap_filling_segment_delivers_past_buffered_data() {
        let mut h = Harness::new(64);
        h.ingest(4, b"ef");
        h.ingest(8, b"ij");
        // Fills the first gap AND overlaps the buffered [4..6).
        h.ingest(0, b"abcdef");
        assert_eq!(h.delivered, b"abcdef");
        assert_eq!(h.r.buffered_bytes(), 2);
        h.ingest(6, b"gh");
        assert_eq!(h.delivered, b"abcdefghij");
    }

    #[test]
    fn consistent_overlap_counts_no_conflict() {
        let mut h = Harness::new(64);
        h.ingest(2, b"cdef");
        h.ingest(0, b"abcd"); // overlaps [2..4) with identical bytes
        assert_eq!(h.delivered, b"abcdef");
        assert!(h.stats.overlap_bytes >= 2);
        assert_eq!(h.stats.overlap_conflicts, 0);
    }

    #[test]
    fn conflicting_overlap_first_wins_and_is_counted() {
        let mut h = Harness::new(64);
        h.ingest(2, b"XY89"); // arrives first: wins [2..6)
        h.ingest(0, b"01ab45"); // conflicts on [2..6): "ab45" vs "XY89"
        assert_eq!(h.delivered, b"01XY89", "first arrival must win");
        assert_eq!(h.stats.overlap_conflicts, 1);
        assert_eq!(h.stats.overlap_bytes, 4);
    }

    #[test]
    fn conflicting_overlap_last_wins_overwrites_buffered() {
        // The exact schedule of the first-wins test above, under the
        // opposite policy: the later arrival's bytes survive, and the
        // conflict accounting is identical — policy changes *which*
        // bytes win, never whether the evasion attempt is observable.
        let mut h = Harness::with_policy(64, OverlapPolicy::LastWins);
        h.ingest(2, b"XY89"); // arrives first: buffered [2..6)
        h.ingest(0, b"01ab45"); // conflicts on [2..6): "ab45" vs "XY89"
        assert_eq!(h.delivered, b"01ab45", "last arrival must win");
        assert_eq!(h.stats.overlap_conflicts, 1);
        assert_eq!(h.stats.overlap_bytes, 4);
    }

    #[test]
    fn last_wins_resolves_buffered_vs_buffered_overlap() {
        // Both segments are out of order (the hole at [0..2) is filled
        // last), so the conflict resolves inside the buffer window, not
        // against about-to-deliver bytes.
        let mut first = Harness::new(64);
        let mut last = Harness::with_policy(64, OverlapPolicy::LastWins);
        for h in [&mut first, &mut last] {
            h.ingest(2, b"XY89"); // buffered [2..6)
            h.ingest(4, b"abcd"); // conflicts on [4..6): "ab" vs "89"
            h.ingest(0, b"01"); // fills the hole, delivers everything
        }
        assert_eq!(first.delivered, b"01XY89cd");
        assert_eq!(last.delivered, b"01XYabcd");
        assert_eq!(first.stats.overlap_conflicts, 1);
        assert_eq!(last.stats.overlap_conflicts, 1);
        assert_eq!(first.stats.overlap_bytes, last.stats.overlap_bytes);
    }

    #[test]
    fn policies_agree_when_overlap_content_agrees() {
        // A true retransmission (identical bytes) is policy-invariant:
        // both profiles deliver the same stream and count no conflict.
        let mut first = Harness::new(64);
        let mut last = Harness::with_policy(64, OverlapPolicy::LastWins);
        for h in [&mut first, &mut last] {
            h.ingest(2, b"23"); // buffered behind the hole [0..2)
            h.ingest(2, b"2345"); // retransmits [2..4) identically, extends
            h.ingest(0, b"01"); // fills the hole, delivers everything
        }
        assert_eq!(first.delivered, b"012345");
        assert_eq!(last.delivered, first.delivered);
        assert_eq!(first.stats.overlap_conflicts, 0);
        assert_eq!(last.stats.overlap_conflicts, 0);
        assert!(first.stats.overlap_bytes > 0);
        assert_eq!(first.stats.overlap_bytes, last.stats.overlap_bytes);
    }

    #[test]
    fn budget_pressure_skips_the_oldest_hole() {
        let mut h = Harness::new(8);
        h.ingest(4, b"ef"); // hole [0..4), buffered [4..6)
        // Tail at 14 > 0 + 8: the oldest hole is abandoned (delivering
        // the buffered "ef"), after which [8..14) fits the window.
        h.ingest(8, b"ijklmn");
        assert_eq!(h.stats.budget_drops, 1);
        assert_eq!(h.stats.holes_skipped, 1);
        assert_eq!(h.delivered, b"ef");
        assert_eq!(h.r.buffered_bytes(), 6);
        assert_eq!(h.r.next_seq(), 6);
        h.flush(); // abandons [6..8), delivers the buffered tail
        assert_eq!(h.delivered, b"efijklmn");
        assert_eq!(h.stats.holes_skipped, 2);
        assert_eq!(h.stats.budget_drops, 1, "flush skips are not budget drops");
        assert_eq!(h.r.buffered_bytes(), 0);
    }

    #[test]
    fn budget_pressure_can_cascade_to_direct_delivery() {
        let mut h = Harness::new(8);
        h.ingest(4, b"ef"); // hole [0..4)
        // Tail at 16 exceeds the window even after the first skip
        // (16 > 6 + 8), so the second hole is abandoned too and the
        // segment delivers directly — no byte is ever dropped to fit.
        h.ingest(12, b"mnop");
        assert_eq!(h.delivered, b"efmnop");
        assert_eq!(h.stats.budget_drops, 2);
        assert_eq!(h.stats.holes_skipped, 2);
        assert_eq!(h.stats.hole_bytes, 4 + 6);
        assert_eq!(h.r.buffered_bytes(), 0);
        assert_eq!(h.r.next_seq(), 16);
    }

    #[test]
    fn far_future_segment_larger_than_budget_delivers_directly() {
        let mut h = Harness::new(4);
        let big = vec![b'z'; 64];
        h.ingest(100, &big);
        // Hole [0..100) skipped, then the segment is in-order and
        // delivers directly — budget only bounds *buffered* bytes.
        assert_eq!(h.delivered, big);
        assert_eq!(h.r.next_seq(), 164);
        assert_eq!(h.stats.hole_bytes, 100);
        assert_eq!(h.r.buffered_bytes(), 0);
    }

    #[test]
    fn flush_skips_every_remaining_hole() {
        let mut h = Harness::new(64);
        h.ingest(2, b"cd");
        h.ingest(6, b"gh");
        h.flush();
        assert_eq!(h.delivered, b"cdgh");
        assert_eq!(h.stats.holes_skipped, 2);
        assert_eq!(h.stats.hole_bytes, 4);
        assert_eq!(h.stats.budget_drops, 0);
        assert_eq!(h.r.next_seq(), 8);
        assert_eq!(h.stats.bytes_held, 0);
    }

    #[test]
    fn scanner_offset_stays_sequence_absolute_across_skips() {
        let mut h = Harness::new(16);
        h.ingest(0, b"ab");
        h.ingest(10, b"kl");
        h.flush(); // skips [2..10)
        assert_eq!(h.state.offset, 12, "offset must equal the delivery point");
        assert_eq!(h.r.next_seq(), 12);
    }

    #[test]
    fn reset_clears_everything_and_reset_to_repositions() {
        let mut h = Harness::new(64);
        h.ingest(4, b"ef");
        h.r.reset();
        assert_eq!(h.r.next_seq(), 0);
        assert_eq!(h.r.buffered_bytes(), 0);
        assert!(!h.r.has_hole());
        h.r.reset_to(1000);
        assert_eq!(h.r.next_seq(), 1000);
    }

    #[test]
    #[should_panic(expected = "reassembly budget must be non-zero")]
    fn zero_budget_config_panics() {
        let _ = ReassemblyConfig::new(0);
    }

    #[test]
    fn zero_budget_is_a_typed_error_on_the_fallible_path() {
        assert_eq!(
            ReassemblyConfig::try_new(0).err(),
            Some(ReassemblyConfigError::ZeroBudget)
        );
        assert_eq!(
            ReassemblyConfigError::ZeroBudget.to_string(),
            "reassembly budget must be non-zero"
        );
        assert_eq!(ReassemblyConfig::try_new(64).unwrap().budget, 64);
    }

    #[test]
    fn default_config_uses_first_wins_and_64k() {
        let c = ReassemblyConfig::default();
        assert_eq!(c.budget, ReassemblyConfig::DEFAULT_BUDGET);
        assert_eq!(c.policy, OverlapPolicy::FirstWins);
        assert_eq!(OverlapPolicy::default(), OverlapPolicy::FirstWins);
    }

    #[test]
    fn stream_flow_resets_both_halves() {
        let mut f = StreamFlow::new(ReassemblyConfig::new(64), ScanState::fresh());
        let mut out = Vec::new();
        let mut stats = ReassemblyStats::default();
        let mut scan = |s: &mut ScanState, chunk: &[u8], _o: &mut Vec<Match>| {
            for b in chunk {
                s.push_byte(*b);
            }
        };
        f.ingest(4, b"ef", &mut scan, &mut out, &mut stats);
        assert_eq!(f.held_bytes(), 2);
        FlowState::reset(&mut f);
        assert_eq!(f.held_bytes(), 0);
        assert_eq!(f.scan.offset, 0);
        assert_eq!(f.reassembler().next_seq(), 0);
        f.reset_at(42);
        assert_eq!(f.scan.offset, 42);
        assert_eq!(f.reassembler().next_seq(), 42);
    }
}
