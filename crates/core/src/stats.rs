//! Progressive reduction statistics — the per-ruleset columns of Table II
//! and the running averages of Figure 2.

use crate::lookup_table::DtpConfig;
use crate::reduce::ReducedAutomaton;
use dpi_automaton::{Dfa, DfaStats, PatternSet};

/// One ruleset's worth of Table II numbers: the original pointer census and
/// the running state of the reduction as depth-1, depth-2 and depth-3
/// defaults are introduced.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionReport {
    /// Number of patterns in the ruleset.
    pub patterns: usize,
    /// Total pattern bytes.
    pub pattern_bytes: usize,
    /// States in the automaton.
    pub states: usize,
    /// "Original Aho-Corasick" average pointers per state (transitions to
    /// non-start states in the full DFA).
    pub original_avg: f64,
    /// Number of depth-1 default pointers installed (Table II row "d1").
    pub d1_entries: usize,
    /// Average stored pointers per state with depth-1 defaults only.
    pub avg_after_d1: f64,
    /// Cumulative default pointers with depth-2 added (row "d1+d2").
    pub d1_d2_entries: usize,
    /// Average stored pointers with depth-1+2 defaults.
    pub avg_after_d2: f64,
    /// Cumulative default pointers with depth-3 added (row "d1+d2+d3").
    pub d1_d2_d3_entries: usize,
    /// Average stored pointers with the full scheme.
    pub avg_after_d3: f64,
    /// Largest per-state stored pointer count under the full scheme (must
    /// be ≤ 13 for the hardware).
    pub max_pointers_after_d3: usize,
    /// Pointer reduction relative to the original algorithm (Table II row
    /// "Reduction", e.g. 0.965 for 96.5 %).
    pub reduction: f64,
}

impl ReductionReport {
    /// Computes the full report for one ruleset under the paper's `k`
    /// values (`k2`/`k3` taken from `config`; the depth-1, depth-1+2 and
    /// full stages are derived from it).
    pub fn compute(set: &PatternSet, config: DtpConfig) -> ReductionReport {
        let dfa = Dfa::build(set);
        Self::compute_from_dfa(set, &dfa, config)
    }

    /// Same as [`ReductionReport::compute`] for a prebuilt DFA.
    pub fn compute_from_dfa(set: &PatternSet, dfa: &Dfa, config: DtpConfig) -> ReductionReport {
        let original = DfaStats::compute(dfa);
        let d1_cfg = DtpConfig {
            depth1: config.depth1,
            k2: 0,
            k3: 0,
        };
        let d12_cfg = DtpConfig {
            depth1: config.depth1,
            k2: config.k2,
            k3: 0,
        };
        let r1 = ReducedAutomaton::reduce(dfa, d1_cfg);
        let r12 = ReducedAutomaton::reduce(dfa, d12_cfg);
        let r123 = ReducedAutomaton::reduce(dfa, config);
        let (d1a, _, _) = r1.lut().entry_counts();
        let (d1b, d2b, _) = r12.lut().entry_counts();
        let (d1c, d2c, d3c) = r123.lut().entry_counts();
        debug_assert_eq!(d1a, d1b);
        debug_assert_eq!(d1b, d1c);
        debug_assert_eq!(d2b, d2c);
        let reduction = if original.non_start_pointers == 0 {
            0.0
        } else {
            1.0 - r123.stored_pointers() as f64 / original.non_start_pointers as f64
        };
        ReductionReport {
            patterns: set.len(),
            pattern_bytes: set.total_bytes(),
            states: dfa.len(),
            original_avg: original.avg_pointers,
            d1_entries: d1a,
            avg_after_d1: r1.avg_pointers(),
            d1_d2_entries: d1c + d2c,
            avg_after_d2: r12.avg_pointers(),
            d1_d2_d3_entries: d1c + d2c + d3c,
            avg_after_d3: r123.avg_pointers(),
            max_pointers_after_d3: r123.max_pointers(),
            reduction,
        }
    }

    /// Reduction as a percentage (Table II prints e.g. "96.5%").
    pub fn reduction_percent(&self) -> f64 {
        self.reduction * 100.0
    }
}

/// Aggregate report for a ruleset split across several string matching
/// blocks: the paper's Table II reports the *summed* states and
/// pointer-count averages over all blocks of a group.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitReductionReport {
    /// Number of blocks the ruleset was split across.
    pub blocks: usize,
    /// Per-block reports.
    pub per_block: Vec<ReductionReport>,
    /// Total states over all blocks (slightly exceeds the unsplit automaton
    /// because shared prefixes are duplicated across blocks).
    pub total_states: usize,
    /// Default-pointer totals across blocks: (d1, d1+d2, d1+d2+d3).
    pub entries: (usize, usize, usize),
    /// Pointer-weighted averages across blocks, after each stage.
    pub avg_after: (f64, f64, f64),
    /// Reduction vs. the sum of the blocks' original pointer counts.
    pub reduction: f64,
    /// Largest per-state pointer count over all blocks.
    pub max_pointers: usize,
}

impl SplitReductionReport {
    /// Splits `set` into `blocks` groups (longest-first round robin, as in
    /// [`PatternSet::split`]) and computes per-block and aggregate numbers.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero or exceeds the pattern count.
    pub fn compute(set: &PatternSet, blocks: usize, config: DtpConfig) -> SplitReductionReport {
        let parts: Vec<PatternSet> = set.split(blocks).into_iter().map(|(s, _)| s).collect();
        Self::compute_parts(&parts, config)
    }

    /// Computes the aggregate over caller-provided parts (e.g. a
    /// prefix-grouped split from a deployment planner, so the statistics
    /// describe exactly the automata that will be deployed).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn compute_parts(parts: &[PatternSet], config: DtpConfig) -> SplitReductionReport {
        assert!(!parts.is_empty(), "at least one part required");
        let blocks = parts.len();
        let per_block: Vec<ReductionReport> = parts
            .iter()
            .map(|sub| ReductionReport::compute(sub, config))
            .collect();
        let total_states: usize = per_block.iter().map(|r| r.states).sum();
        let entries = (
            per_block.iter().map(|r| r.d1_entries).sum(),
            per_block.iter().map(|r| r.d1_d2_entries).sum(),
            per_block.iter().map(|r| r.d1_d2_d3_entries).sum(),
        );
        let weighted = |f: fn(&ReductionReport) -> f64| -> f64 {
            let num: f64 = per_block.iter().map(|r| f(r) * r.states as f64).sum();
            num / total_states as f64
        };
        let original_total: f64 = per_block
            .iter()
            .map(|r| r.original_avg * r.states as f64)
            .sum();
        let final_total: f64 = per_block
            .iter()
            .map(|r| r.avg_after_d3 * r.states as f64)
            .sum();
        SplitReductionReport {
            blocks,
            total_states,
            entries,
            avg_after: (
                weighted(|r| r.avg_after_d1),
                weighted(|r| r.avg_after_d2),
                weighted(|r| r.avg_after_d3),
            ),
            reduction: 1.0 - final_total / original_total,
            max_pointers: per_block
                .iter()
                .map(|r| r.max_pointers_after_d3)
                .max()
                .unwrap_or(0),
            per_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_progression() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let r = ReductionReport::compute(&set, DtpConfig::PAPER);
        assert_eq!(r.states, 10);
        assert!((r.original_avg - 2.6).abs() < 1e-12);
        assert!((r.avg_after_d1 - 1.1).abs() < 1e-12);
        assert!((r.avg_after_d2 - 0.5).abs() < 1e-12);
        assert!((r.avg_after_d3 - 0.1).abs() < 1e-12);
        assert_eq!(r.d1_entries, 2);
        assert_eq!(r.d1_d2_entries, 5);
        assert_eq!(r.d1_d2_d3_entries, 8);
        // 1 remaining of 26 original pointers ≈ 96.2% reduction.
        assert!((r.reduction_percent() - (1.0 - 1.0 / 26.0) * 100.0).abs() < 1e-9);
        assert_eq!(r.max_pointers_after_d3, 1);
    }

    #[test]
    fn averages_decrease_monotonically() {
        let set =
            PatternSet::new(["GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "TRACE"]).unwrap();
        let r = ReductionReport::compute(&set, DtpConfig::PAPER);
        assert!(r.original_avg >= r.avg_after_d1);
        assert!(r.avg_after_d1 >= r.avg_after_d2);
        assert!(r.avg_after_d2 >= r.avg_after_d3);
        assert!(r.reduction > 0.0 && r.reduction <= 1.0);
    }

    #[test]
    fn split_report_partitions_states() {
        let strings: Vec<String> = (0..40)
            .map(|i| format!("pattern-{i}-{}", "x".repeat(i % 7 + 1)))
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let whole = ReductionReport::compute(&set, DtpConfig::PAPER);
        let split = SplitReductionReport::compute(&set, 4, DtpConfig::PAPER);
        assert_eq!(split.blocks, 4);
        assert_eq!(split.per_block.len(), 4);
        // Splitting duplicates shared prefix states, never loses any.
        assert!(split.total_states >= whole.states);
        assert!(split.reduction > 0.0);
        assert!(split.max_pointers >= 1);
        // Entry counts are running sums.
        assert!(split.entries.0 <= split.entries.1);
        assert!(split.entries.1 <= split.entries.2);
    }
}
