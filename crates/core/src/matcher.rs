//! Software scanner over the reduced automaton, mirroring the hardware
//! engine's history handling.
//!
//! The engine keeps the previous two input characters of the packet being
//! scanned (Figure 5). At packet start these registers hold stale bytes from
//! the previous packet, so the paper's *start signal* masks the comparisons:
//! the first byte may only use the depth-1 default and the second byte may
//! not use the depth-3 default. [`DtpMatcher`] reproduces that masking
//! exactly; its agreement with the full DFA on every input is the central
//! correctness property of the reproduction (see `tests/equivalence.rs`).

use crate::reduce::ReducedAutomaton;
use dpi_automaton::{Match, MultiMatcher, PatternSet, ScanState, StateId};

/// Scanner over a [`ReducedAutomaton`] with per-packet history masking.
///
/// This is the *reference* runtime — faithful to the build-time
/// structure, easy to audit. Production scanning should use
/// [`CompiledMatcher`](crate::CompiledMatcher) (single automaton) or
/// [`ShardedMatcher`](crate::ShardedMatcher) (multi-core), both of which
/// are differential-tested against this matcher.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{Dfa, MultiMatcher, PatternSet};
/// use dpi_core::{DtpConfig, DtpMatcher, ReducedAutomaton};
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
/// let matcher = DtpMatcher::new(&reduced, &set);
/// assert_eq!(matcher.find_all(b"ushers").len(), 3); // she, he, hers
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DtpMatcher<'a> {
    automaton: &'a ReducedAutomaton,
    set: &'a PatternSet,
}

impl<'a> DtpMatcher<'a> {
    /// Creates a matcher borrowing the reduced automaton and pattern set.
    pub fn new(automaton: &'a ReducedAutomaton, set: &'a PatternSet) -> Self {
        DtpMatcher { automaton, set }
    }

    /// The one copy of the per-packet scan state machine (history
    /// registers + start-signal masking); every scan entry point layers
    /// its bookkeeping on this via `on_state`.
    #[inline(always)]
    fn scan_core(&self, packet: &[u8], mut on_state: impl FnMut(usize, StateId)) {
        let mut state = StateId::START;
        // History registers; `None` models the start-signal masking of
        // not-yet-valid registers rather than actual register contents.
        let mut prev: Option<u8> = None;
        let mut prev2: Option<u8> = None;
        for (i, &raw) in packet.iter().enumerate() {
            let byte = self.set.fold(raw);
            state = self.automaton.step(state, byte, prev, prev2);
            on_state(i, state);
            prev2 = prev;
            prev = Some(byte);
        }
    }

    /// Resumable scan: consumes `chunk` from `state`, **appending** every
    /// occurrence to `out` with stream-absolute `end` offsets, and leaves
    /// `state` ready for the flow's next chunk.
    ///
    /// This is the *reference* semantics of streaming for the DTP scheme:
    /// the history registers persist across the chunk boundary exactly as
    /// the hardware engine's registers persist between a flow's packets,
    /// so depth-2/3 default transitions whose compare bytes live in the
    /// previous chunk still fire. `tests/streaming.rs` pins the compiled
    /// fast paths against this matcher chunk-for-chunk.
    pub fn scan_chunk_into(&self, state: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>) {
        let base = state.offset as usize;
        let mut s = state.state;
        let mut prev = state.prev;
        let mut prev2 = state.prev2;
        for (i, &raw) in chunk.iter().enumerate() {
            let byte = self.set.fold(raw);
            s = self.automaton.step(s, byte, prev, prev2);
            prev2 = prev;
            prev = Some(byte);
            for &p in self.automaton.output(s) {
                out.push(Match {
                    end: base + i + 1,
                    pattern: p,
                });
            }
        }
        state.state = s;
        state.prev = prev;
        state.prev2 = prev2;
        state.offset += chunk.len() as u64;
    }

    /// Scans one packet, returning matches and the per-byte state trace
    /// (used by differential tests to assert *state* equivalence with the
    /// full DFA, not just match equivalence).
    pub fn scan_with_trace(&self, packet: &[u8]) -> (Vec<Match>, Vec<StateId>) {
        let mut matches = Vec::new();
        let mut trace = Vec::with_capacity(packet.len());
        self.scan_core(packet, |i, state| {
            trace.push(state);
            for &p in self.automaton.output(state) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        });
        (matches, trace)
    }

    /// Scans a packet whose history registers hold `stale` bytes from a
    /// previous packet **without** start-signal masking. Exists to
    /// demonstrate (in tests) why the masking is necessary: with stale
    /// history, deep defaults can fire spuriously on the first two bytes.
    pub fn scan_unmasked_with_stale_history(
        &self,
        packet: &[u8],
        stale: [u8; 2],
    ) -> Vec<Match> {
        let mut matches = Vec::new();
        let mut state = StateId::START;
        let mut prev = Some(stale[1]);
        let mut prev2 = Some(stale[0]);
        for (i, &raw) in packet.iter().enumerate() {
            let byte = self.set.fold(raw);
            state = self.automaton.step(state, byte, prev, prev2);
            for &p in self.automaton.output(state) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
            prev2 = prev;
            prev = Some(byte);
        }
        matches
    }
}

impl MultiMatcher for DtpMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.find_all_into(haystack, &mut out);
        out
    }

    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        out.clear();
        self.scan_core(haystack, |i, state| {
            for &p in self.automaton.output(state) {
                out.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup_table::DtpConfig;
    use dpi_automaton::{Dfa, DfaMatcher};

    fn build(patterns: &[&str]) -> (PatternSet, Dfa, ReducedAutomaton) {
        let set = PatternSet::new(patterns).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        (set, dfa, red)
    }

    #[test]
    fn matches_figure1_text() {
        let (set, _, red) = build(&["he", "she", "his", "hers"]);
        let m = DtpMatcher::new(&red, &set);
        let found = m.find_all(b"ushers");
        assert_eq!(found.len(), 3);
        assert!(m.is_match(b"this"));
        assert!(m.is_match(b"hex")); // contains "he"
        assert!(!m.is_match(b"hx sx ex"));
    }

    #[test]
    fn state_trace_equals_dfa_trace() {
        let (set, dfa, red) = build(&["he", "she", "his", "hers"]);
        let dtp = DtpMatcher::new(&red, &set);
        let full = DfaMatcher::new(&dfa, &set);
        for text in [
            &b"ushers"[..],
            b"shishershehehehers",
            b"xxxxxxxx",
            b"hhhhssss",
            b"",
            b"s",
            b"sh",
        ] {
            let (dm, dt) = dtp.scan_with_trace(text);
            let (fm, ft) = full.scan_with_trace(text);
            assert_eq!(dt, ft, "state trace diverged on {text:?}");
            assert_eq!(dm, fm, "matches diverged on {text:?}");
        }
    }

    #[test]
    fn masking_prevents_stale_history_false_transitions() {
        // Patterns chosen so a depth-3 default exists for byte 'e' with
        // compare bytes (s, h). A new packet starting with 'e' whose stale
        // registers happen to contain "sh" would jump straight to "she"
        // without masking.
        let (set, _, red) = build(&["he", "she", "his", "hers"]);
        let m = DtpMatcher::new(&red, &set);
        // Correct (masked) behaviour: packet "e" matches nothing.
        assert!(m.find_all(b"e").is_empty());
        // Unmasked with stale history "sh": the depth-3 default fires and
        // falsely reports "she" (and its suffix "he").
        let bogus = m.scan_unmasked_with_stale_history(b"e", [b's', b'h']);
        assert!(
            !bogus.is_empty(),
            "expected spurious match demonstrating why masking is required"
        );
    }

    #[test]
    fn second_byte_depth2_default_is_allowed() {
        // Packet "he": first byte masked to depth-1 ('h' exists), second
        // byte may use the depth-2 default for 'e' (prev = 'h') → "he".
        let (set, _, red) = build(&["he", "she", "his", "hers"]);
        let m = DtpMatcher::new(&red, &set);
        let found = m.find_all(b"he");
        assert_eq!(found.len(), 1);
        assert_eq!(set.pattern(found[0].pattern), b"he");
    }

    #[test]
    fn nocase_matching() {
        let set = PatternSet::new_nocase(["Attack"]).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let m = DtpMatcher::new(&red, &set);
        assert!(m.is_match(b"ATTACK AT DAWN"));
        assert!(m.is_match(b"attack"));
    }

    #[test]
    fn binary_patterns_scan() {
        let set = PatternSet::new([&[0x90u8, 0x90, 0x90][..], &[0xde, 0xad][..]]).unwrap();
        let dfa = Dfa::build(&set);
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let m = DtpMatcher::new(&red, &set);
        let hay = [0x00, 0x90, 0x90, 0x90, 0xde, 0xad, 0xbe, 0xef];
        let found = m.find_all(&hay);
        assert_eq!(found.len(), 2);
    }
}
