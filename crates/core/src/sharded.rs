//! Sharded per-core scan engine: independent compiled automata per core.
//!
//! PR 1's measurement settled how this workspace scales past one core.
//! The paper hides the byte→state→byte serial dependency by clocking
//! engines out of phase on *per-block memories*; the software rendering
//! of that interleave ([`BatchScanner`](crate::BatchScanner)) breaks
//! even at best, because
//! software lanes share one cache hierarchy where hardware engines own
//! their ports. What *does* translate is the paper's other axis (§IV.B):
//! splitting the ruleset itself across blocks. In software the "block"
//! is a core with its own L1/L2: partition the patterns with
//! [`PatternSet::plan_shards`], compile one small [`CompiledAutomaton`]
//! per shard, and scan the payload through every shard concurrently on a
//! scoped thread pool. Each shard's automaton is a fraction of the
//! monolith — small enough to stay cache-resident — so per-shard scan
//! speed rises exactly where the monolithic automaton falls off.
//!
//! Two scan shapes cover the two deployment scenarios:
//!
//! - [`ShardedMatcher::scan_into`] — one large payload, all shards in
//!   parallel, matches merged back to global [`PatternId`]s in canonical
//!   `(end, pattern)` order. With `cores = 1` the same API runs the
//!   shards sequentially on the calling thread (no threads spawned).
//! - [`ShardedMatcher::scan_stream_into`] — many payloads (the
//!   millions-of-flows scenario): payloads are partitioned across cores
//!   and each core runs every shard over its own payloads, so per-flow
//!   results never cross threads.
//!
//! Equivalence with the monolithic [`CompiledMatcher`] — and through it
//! with the reference [`DtpMatcher`](crate::DtpMatcher) and the full DFA
//! — is pinned by `tests/sharded_engine.rs` and the property suites in
//! `tests/equivalence.rs`.
//!
//! # Examples
//!
//! ```
//! use dpi_automaton::{MultiMatcher, PatternSet};
//! use dpi_core::{ShardedConfig, ShardedMatcher};
//!
//! let set = PatternSet::new(["he", "she", "his", "hers"])?;
//! let matcher = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2))?;
//! assert_eq!(matcher.find_all(b"ushers").len(), 3);
//!
//! // Production shape: reuse scratch + output across payloads.
//! let mut scratch = matcher.scratch();
//! let mut out = Vec::new();
//! matcher.scan_into(b"his and hers", &mut scratch, &mut out);
//! assert_eq!(out.len(), 3); // his, he, hers
//!
//! // Streaming shape: one cheap state per flow, chunks of any size.
//! let mut flow = matcher.flow_state();
//! out.clear(); // chunk scans append
//! matcher.scan_chunk_into(&mut flow, b"her", &mut scratch, &mut out);
//! matcher.scan_chunk_into(&mut flow, b"s", &mut scratch, &mut out);
//! assert_eq!(out.len(), 2); // he@..2, hers@..4 — across the boundary
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::compiled::{CompiledAutomaton, CompiledMatcher};
use crate::lookup_table::DtpConfig;
use crate::reduce::ReducedAutomaton;
use dpi_automaton::{
    AnchorSet, Dfa, Match, MultiMatcher, PairTable, PatternId, PatternSet, ScanState,
    ShardPlanError, ShardSpec, SplitStrategy,
};

/// Build-time configuration of a [`ShardedMatcher`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Scanning cores to plan for and to spawn in the parallel scan
    /// entry points. `1` selects the sequential same-API mode.
    pub cores: usize,
    /// Preferred shard count the planner starts from (normally equal
    /// to `cores`; [`ShardedConfig::autotune_shards`] sets it from a
    /// measured probe scan).
    pub shards_hint: usize,
    /// Per-shard compiled-arena budget in bytes (the cache level each
    /// shard should fit — typically L2).
    pub budget_bytes: usize,
    /// Hard ceiling on shard count.
    pub max_shards: usize,
    /// Default-transition configuration each shard is reduced with.
    pub dtp: DtpConfig,
    /// Enable the next-row touch prefetch in every shard's scan loop
    /// (see [`CompiledMatcher::with_prefetch`]).
    pub prefetch: bool,
    /// Compile every shard with the anchor-byte skip lane (default on).
    /// Each shard derives its **own** [`AnchorSet`] — a shard holds a
    /// fraction of the patterns, so its anchor set is smaller than the
    /// master's and its lane skips strictly more of the same traffic.
    pub prefilter: bool,
    /// Shallow-depth horizon the per-shard anchor analyses are built
    /// with (see [`AnchorSet::build`]).
    pub anchor_horizon: u8,
    /// Compile every shard with the stride-2 pair-stepping lane
    /// (default on). Each shard derives its **own** [`PairTable`] —
    /// a shard's automaton is a fraction of the monolith's, so the same
    /// per-shard budget covers a larger share of its hot states.
    pub pairs: bool,
    /// Per-shard byte budget for the pair-transition layer (see
    /// [`PairTable::build`]); a budget below [`PairTable::ROW_BYTES`]
    /// disables the layer for that shard.
    pub pair_budget_bytes: usize,
    /// Run every shard's scan loops on the SIMD fast-lane kernels
    /// (default on; see [`CompiledMatcher::with_simd`]). Inert — the
    /// safe scalar lanes run — unless the crate was built with the
    /// `simd` feature on x86_64 and the CPU supports SSSE3, so the
    /// field exists (and round-trips) on every build.
    pub simd: bool,
}

impl ShardedConfig {
    /// A configuration targeting `cores` cores, inheriting the planner's
    /// default budget and shard cap from [`ShardSpec::for_cores`] (so the
    /// two stay in lockstep), with the paper's DTP configuration and
    /// prefetch off. For planner knobs not surfaced here (skew limit,
    /// cost model), call [`PatternSet::plan_shards`] directly.
    pub fn with_cores(cores: usize) -> ShardedConfig {
        let spec = ShardSpec::for_cores(cores);
        ShardedConfig {
            cores: cores.max(1),
            shards_hint: cores.max(1),
            budget_bytes: spec.budget_bytes,
            max_shards: spec.max_shards,
            dtp: DtpConfig::PAPER,
            prefetch: false,
            prefilter: true,
            anchor_horizon: AnchorSet::DEFAULT_HORIZON,
            pairs: true,
            pair_budget_bytes: Self::DEFAULT_PAIR_BUDGET,
            simd: true,
        }
    }

    /// Switches this exact-stage configuration into the two-stage scan
    /// path: the returned [`TwoStageConfig`](crate::TwoStageConfig)
    /// keeps every knob here for the verifier (stage 2) and puts an
    /// approximate pre-classifier with the given budget in front of it.
    /// Build with [`TwoStageMatcher::build`](crate::TwoStageMatcher::build);
    /// see `crate::two_stage` for the window-replay discipline.
    pub fn two_stage(
        self,
        approx: dpi_automaton::ApproxConfig,
    ) -> crate::two_stage::TwoStageConfig {
        crate::two_stage::TwoStageConfig {
            approx,
            exact: self,
        }
    }

    /// Default per-shard pair-layer budget: the region pair rows plus
    /// 8 hot rows (~2 MiB). Shard automata are cache-budget-sized
    /// fractions of the master, so eight hot states cover a larger
    /// occupancy share per shard than the monolith's 16-row default
    /// does for the whole set; only the touched cache lines of a row
    /// become resident.
    pub const DEFAULT_PAIR_BUDGET: usize =
        PairTable::REGION_ROW_BYTES + 8 * PairTable::ROW_BYTES;

    /// Growth factor a larger shard count must beat in the autotune
    /// probe before it is preferred — shard proliferation multiplies
    /// total work (every shard scans every byte), so a bigger count
    /// has to pay measurably, not within noise.
    const AUTOTUNE_MARGIN: f64 = 0.90;

    /// Picks the shard count from a **measured probe scan** instead of
    /// the cost model's guess: for each candidate count (multiples of
    /// `cores`, doubling up to the planner cap), the largest planned
    /// shard is compiled and timed over a synthetic probe payload, and
    /// the candidate minimizing the projected slowest-core time
    /// (`shards-per-core × measured per-shard time`) wins. Larger
    /// counts are only taken when they beat the incumbent by a real
    /// margin, so the chooser settles on `cores` shards whenever the
    /// ruleset already fits per-core caches — the measured answer to
    /// the "how many shards?" question the cost model can only
    /// estimate.
    ///
    /// Returns a configuration whose [`ShardedConfig::shards_hint`]
    /// pins the chosen count as the planner's starting point (the
    /// per-shard arena budget can still grow it — the cost model stays
    /// as the cache-residency safety net).
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::PatternExceedsBudget`] when planning any
    /// candidate fails (see [`PatternSet::plan_shards`]).
    pub fn autotune_shards(
        set: &PatternSet,
        cores: usize,
    ) -> Result<ShardedConfig, ShardPlanError> {
        // Probe payload: low-entropy text mixed with pseudo-random
        // bytes — enough automaton exercise to expose cache effects
        // without depending on the traffic crates.
        let mut probe = Vec::with_capacity(128 * 1024);
        let mut x: u64 = 0x5EED_CAFE;
        while probe.len() < 128 * 1024 {
            probe.extend_from_slice(b"GET /autotune HTTP/1.1\r\nHost: probe\r\n");
            for _ in 0..24 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                probe.push((x >> 33) as u8);
            }
        }
        let base = ShardedConfig::with_cores(cores);
        Self::autotune_shards_with(set, cores, |sub| {
            // The probe shard carries the exact lane stack the returned
            // config deploys (prefilter + pair layer under the same
            // budget) — the chooser's premise is measured cache
            // residency, and the pair rows are part of the footprint.
            let dfa = Dfa::build(sub);
            let reduced = ReducedAutomaton::reduce(&dfa, base.dtp);
            let anchors = AnchorSet::build(&dfa, sub, base.anchor_horizon);
            let pairs = base
                .pairs
                .then(|| {
                    PairTable::build_with_region(&dfa, sub, &anchors, base.pair_budget_bytes)
                })
                .filter(|p| !p.is_empty());
            let mut compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
            if let Some(pairs) = pairs {
                compiled = compiled.with_pair_table(pairs);
            }
            let matcher = CompiledMatcher::new(&compiled, sub);
            let mut best = f64::INFINITY;
            let mut sink = 0usize;
            for _ in 0..3 {
                let start = std::time::Instant::now();
                matcher.for_each_match(&probe, |_| sink += 1);
                best = best.min(start.elapsed().as_secs_f64());
            }
            std::hint::black_box(sink);
            best / probe.len() as f64
        })
    }

    /// The chooser behind [`ShardedConfig::autotune_shards`], with the
    /// probe measurement injected — `measure` returns a shard's scan
    /// cost in seconds per byte. Exposed so the selection logic can be
    /// unit-tested against a synthetic cost model without timing real
    /// scans.
    pub fn autotune_shards_with(
        set: &PatternSet,
        cores: usize,
        mut measure: impl FnMut(&PatternSet) -> f64,
    ) -> Result<ShardedConfig, ShardPlanError> {
        let cores = cores.max(1);
        let mut config = ShardedConfig::with_cores(cores);
        let cap = ShardSpec::for_cores(cores).max_shards.min(set.len().max(1));
        let mut best: Option<(usize, f64)> = None;
        let mut n = cores.min(cap);
        loop {
            // Plan exactly `n` shards and time the largest one — the
            // slowest-core bound is what a deployment actually waits
            // on.
            let mut spec = ShardSpec::for_cores(cores);
            spec.shards_hint = n;
            spec.budget_bytes = usize::MAX;
            let plan = set.plan_shards(&spec)?;
            let largest = plan
                .estimated_bytes
                .iter()
                .enumerate()
                .max_by_key(|&(_, b)| *b)
                .map(|(i, _)| i)
                .expect("plans are non-empty");
            let secs_per_byte = measure(&plan.parts[largest].0);
            let per_core = plan.len().div_ceil(cores) as f64 * secs_per_byte;
            let better = match best {
                None => true,
                Some((_, incumbent)) => per_core < incumbent * ShardedConfig::AUTOTUNE_MARGIN,
            };
            if better {
                best = Some((plan.len(), per_core));
            }
            if n >= cap {
                break;
            }
            n = (n * 2).min(cap);
        }
        config.shards_hint = best.expect("at least one candidate").0;
        Ok(config)
    }
}

impl Default for ShardedConfig {
    /// Targets every core the host exposes.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ShardedConfig::with_cores(cores)
    }
}

/// One shard: a pattern subset, its compiled automaton, and the map from
/// shard-local pattern ids back to ids in the original set.
#[derive(Debug, Clone)]
struct Shard {
    set: PatternSet,
    /// `ids[local]` is the global id; ascending, so a shard's canonical
    /// match order is already global canonical order.
    ids: Vec<PatternId>,
    automaton: CompiledAutomaton,
}

/// Resumable per-flow state for a [`ShardedMatcher`]: one [`ScanState`]
/// per shard (every shard automaton walks the flow independently, so
/// each carries its own state and history registers across packet
/// boundaries). Create with [`ShardedMatcher::flow_state`]; sized and
/// valid only for the matcher that created it.
///
/// At the paper's shard counts this is a handful of 16-byte registers
/// per flow — small enough for a [`FlowTable`](crate::FlowTable) to hold
/// millions of concurrent flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedScanState {
    /// Parallel to the matcher's shards.
    per_shard: Vec<ScanState>,
}

impl ShardedScanState {
    /// Bytes of the flow consumed so far (shards advance in lockstep).
    pub fn offset(&self) -> u64 {
        self.per_shard.first().map_or(0, |s| s.offset)
    }

    /// Number of per-shard states (the owning matcher's shard count).
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Returns every per-shard register to the fresh-flow value in place
    /// — flow-table slot reuse without reallocating the state vector.
    pub fn reset(&mut self) {
        for s in &mut self.per_shard {
            s.reset();
        }
    }

    /// Resets every per-shard register to
    /// [`ScanState::fresh_at`]`(offset)` in place: history masked as at
    /// flow start, stream offset advanced to `offset`. The resume
    /// primitive after a reassembly hole-skip — see
    /// [`ScanState::reset_at`] for the boundary-local-loss argument.
    pub fn reset_at(&mut self, offset: u64) {
        for s in &mut self.per_shard {
            s.reset_at(offset);
        }
    }

    /// `true` when every shard automaton sits at its start state: by the
    /// Aho-Corasick longest-suffix invariant, no occurrence of any
    /// pattern is in flight beyond what the two history registers can
    /// carry (≤ 2 bytes of progress). The two-stage scanner uses this to
    /// end a window replay early — once past the flag with all shards at
    /// rest, the remaining window can only contain occurrences that
    /// start later, and those are covered by their own flags.
    pub fn at_rest(&self) -> bool {
        self.per_shard
            .iter()
            .all(|s| s.state == dpi_automaton::StateId::START)
    }

    /// [`ShardedScanState::at_rest`] over the masked lanes only (see
    /// [`lane_in_mask`] for the mask convention).
    pub(crate) fn at_rest_masked(&self, mask: u64) -> bool {
        self.per_shard
            .iter()
            .enumerate()
            .filter(|&(i, _)| lane_in_mask(i, mask))
            .all(|(_, s)| s.state == dpi_automaton::StateId::START)
    }

    /// Stream offset lane `lane` has consumed through. Lanes advance in
    /// lockstep under [`ShardedMatcher::scan_chunk_into`] but diverge
    /// under masked scanning, where each lane is its own resumable
    /// stream cursor.
    pub(crate) fn lane_offset(&self, lane: usize) -> u64 {
        self.per_shard[lane].offset
    }

    /// [`ScanState::reset_at`] applied to one lane only — the join
    /// primitive for masked window replay: the joining lane's history is
    /// masked as of `offset` while every other lane keeps its in-flight
    /// state untouched.
    pub(crate) fn reset_lane_at(&mut self, lane: usize, offset: u64) {
        self.per_shard[lane].reset_at(offset);
    }

    /// [`ShardedScanState::reset_at`] over the masked lanes only.
    pub(crate) fn reset_lanes_at(&mut self, mask: u64, offset: u64) {
        for (i, s) in self.per_shard.iter_mut().enumerate() {
            if lane_in_mask(i, mask) {
                s.reset_at(offset);
            }
        }
    }
}

/// The masked-scan lane convention: bit `i` of a `u64` mask selects
/// shard `i` for the first 64 shards; shards at index 64 and beyond are
/// always selected (shard counts that large exceed what a single mask
/// word can subset, and per-core shard plans stay far below it — the
/// merge fan-in is capped at 64 for the same reason).
#[inline]
pub(crate) fn lane_in_mask(lane: usize, mask: u64) -> bool {
    lane >= 64 || mask & (1u64 << lane) != 0
}

/// Reusable per-scan buffers for [`ShardedMatcher::scan_into`]: one match
/// buffer per shard plus the merge cursors. Keep one per worker and the
/// scan path performs no steady-state allocation.
#[derive(Debug, Clone, Default)]
pub struct ShardedScratch {
    per_shard: Vec<Vec<Match>>,
    cursors: Vec<usize>,
}

/// Reusable buffers for [`ShardedMatcher::scan_stream_with`]: one
/// [`ShardedScratch`] per worker thread. Keep one per ingest loop and
/// repeated stream scans reuse every per-shard buffer's capacity.
#[derive(Debug, Clone, Default)]
pub struct StreamScratch {
    per_worker: Vec<ShardedScratch>,
}

/// Multi-core scanner over per-shard compiled automata. Build once with
/// [`ShardedMatcher::build`], scan with [`ShardedMatcher::scan_into`]
/// (one payload, shards in parallel) or
/// [`ShardedMatcher::scan_stream_into`] (payload batches, flows in
/// parallel).
#[derive(Debug, Clone)]
pub struct ShardedMatcher {
    shards: Vec<Shard>,
    /// Worker count for the parallel entry points (1 = sequential mode).
    cores: usize,
    strategy: SplitStrategy,
    /// Case-fold table shared by every shard (all shards inherit the
    /// original set's case mode).
    fold: [u8; 256],
    prefetch: bool,
    prefilter: bool,
    pairs: bool,
    /// Request the SIMD fast-lane kernels in every per-shard matcher
    /// (honored only when the build and CPU support them — see
    /// [`CompiledMatcher::with_simd`]).
    simd: bool,
    /// Shard index boundaries assigning contiguous shard runs to worker
    /// threads, balanced by compiled-arena bytes ([0, …, shard count]).
    chunk_bounds: Vec<usize>,
}

impl ShardedMatcher {
    /// Plans a shard layout for `set` (prefix split, falling back to the
    /// round-robin split when prefixes skew — see
    /// [`PatternSet::plan_shards`]), compiles one automaton per shard,
    /// and precomputes the core assignment.
    ///
    /// # Errors
    ///
    /// [`ShardPlanError::PatternExceedsBudget`] when a single pattern's
    /// estimated arena alone exceeds `config.budget_bytes` — no shard
    /// count can satisfy such a budget. Never fires under
    /// [`ShardedConfig::with_cores`] defaults (a maximum-length pattern
    /// estimates well under the default 1 MiB budget).
    pub fn build(
        set: &PatternSet,
        config: &ShardedConfig,
    ) -> Result<ShardedMatcher, ShardPlanError> {
        Self::build_inner(set, config, None)
    }

    /// [`ShardedMatcher::build`] with profile-guided pair layers: each
    /// shard's hot pair rows are ranked by the occupancy of a scan
    /// over `sample` (see [`PairTable::build_profiled`]) instead of
    /// the static in-degree proxy. `sample` should be representative
    /// traffic; it is scanned once per shard at build time.
    ///
    /// # Errors
    ///
    /// As [`ShardedMatcher::build`].
    pub fn build_with_profile(
        set: &PatternSet,
        config: &ShardedConfig,
        sample: &[u8],
    ) -> Result<ShardedMatcher, ShardPlanError> {
        Self::build_inner(set, config, Some(sample))
    }

    fn build_inner(
        set: &PatternSet,
        config: &ShardedConfig,
        profile: Option<&[u8]>,
    ) -> Result<ShardedMatcher, ShardPlanError> {
        let mut spec = ShardSpec::for_cores(config.cores);
        spec.shards_hint = config.shards_hint.max(1);
        spec.budget_bytes = config.budget_bytes;
        spec.max_shards = config.max_shards;
        let plan = set.plan_shards(&spec)?;
        let strategy = plan.strategy;
        let shards: Vec<Shard> = plan
            .parts
            .into_iter()
            .map(|(sub, ids)| {
                let dfa = Dfa::build(&sub);
                let reduced = ReducedAutomaton::reduce(&dfa, config.dtp);
                let automaton = if config.prefilter {
                    let anchors = AnchorSet::build(&dfa, &sub, config.anchor_horizon);
                    let pairs = config.pairs.then(|| match profile {
                        Some(sample) => PairTable::build_profiled(
                            &dfa,
                            &sub,
                            &anchors,
                            config.pair_budget_bytes,
                            sample,
                        ),
                        None => PairTable::build_with_region(
                            &dfa,
                            &sub,
                            &anchors,
                            config.pair_budget_bytes,
                        ),
                    });
                    let a = CompiledAutomaton::compile_with_prefilter(&reduced, anchors);
                    match pairs {
                        Some(p) if !p.is_empty() => a.with_pair_table(p),
                        _ => a,
                    }
                } else {
                    let a = CompiledAutomaton::compile(&reduced);
                    if config.pairs && config.pair_budget_bytes >= PairTable::ROW_BYTES {
                        let table = match profile {
                            Some(sample) => {
                                let scores = PairTable::occupancy_profile(
                                    &dfa, &sub, None, sample,
                                );
                                PairTable::build_scored(
                                    &dfa,
                                    &sub,
                                    config.pair_budget_bytes,
                                    &scores,
                                )
                            }
                            None => PairTable::build(&dfa, &sub, config.pair_budget_bytes),
                        };
                        a.with_pair_table(table)
                    } else {
                        a
                    }
                };
                Shard {
                    set: sub,
                    ids,
                    automaton,
                }
            })
            .collect();
        let mut fold = [0u8; 256];
        for (b, slot) in fold.iter_mut().enumerate() {
            *slot = set.fold(b as u8);
        }
        let costs: Vec<usize> = shards.iter().map(|s| s.automaton.memory_bytes()).collect();
        let chunk_bounds = chunk_bounds(&costs, config.cores);
        Ok(ShardedMatcher {
            shards,
            cores: config.cores.max(1),
            strategy,
            fold,
            prefetch: config.prefetch,
            prefilter: config.prefilter,
            pairs: config.pairs,
            simd: config.simd,
            chunk_bounds,
        })
    }

    /// Number of shards the pattern set was split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker count the parallel entry points use.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Which split strategy the planner selected.
    pub fn strategy(&self) -> SplitStrategy {
        self.strategy
    }

    /// Whether shard scan loops issue the next-row touch prefetch.
    pub fn prefetch(&self) -> bool {
        self.prefetch
    }

    /// Whether shard scan loops run the anchor-byte skip lane.
    pub fn prefilter(&self) -> bool {
        self.prefilter
    }

    /// Whether shard scan loops run the stride-2 pair-stepping lane.
    pub fn pairs(&self) -> bool {
        self.pairs
    }

    /// Enables or disables the SIMD fast-lane kernels for subsequent
    /// scans — the A/B switch mirroring the per-matcher
    /// [`CompiledMatcher::with_simd`]. Requesting them is always sound:
    /// on portable builds or CPUs without SSSE3 the request is ignored
    /// and the safe scalar lanes run.
    pub fn with_simd(mut self, enabled: bool) -> Self {
        self.simd = enabled;
        self
    }

    /// Whether the SIMD fast-lane kernels are actually active in shard
    /// scan loops: requested **and** available on this build and CPU.
    pub fn simd(&self) -> bool {
        self.simd && dpi_automaton::simd_available()
    }

    /// The pair-transition layer of shard `shard` (present when built
    /// with `pairs` and a budget of at least one row). Exposed so tests
    /// and benches can inspect per-shard hot-set coverage and memory.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_pairs(&self, shard: usize) -> Option<&PairTable> {
        self.shards[shard].automaton.pairs()
    }

    /// The anchor analysis of shard `shard` (present when built with
    /// `prefilter`). Exposed so benches and tests can verify that shard
    /// anchor sets shrink relative to the master's — the reason sharded
    /// scanning skips more of the same traffic.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_anchors(&self, shard: usize) -> Option<&AnchorSet> {
        self.shards[shard].automaton.prefilter()
    }

    /// Total flat-memory bytes across all shard automata.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.automaton.memory_bytes()).sum()
    }

    /// Flat-memory bytes of shard `shard` — the quantity the planner
    /// budgeted against the per-core cache.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_memory_bytes(&self, shard: usize) -> usize {
        self.shards[shard].automaton.memory_bytes()
    }

    /// Pattern count of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].set.len()
    }

    /// The contiguous shard ranges assigned to each worker thread by the
    /// arena-balanced partition — one range per core that
    /// [`ShardedMatcher::scan_into`] will occupy. Exposed so benches and
    /// custom executors can reason about (or reproduce) the exact
    /// per-core workload.
    pub fn core_assignments(&self) -> Vec<std::ops::Range<usize>> {
        self.chunk_bounds
            .windows(2)
            .map(|w| w[0]..w[1])
            .collect()
    }

    /// Fresh scratch sized for this matcher. Reuse it across scans; the
    /// inner buffers keep their capacity.
    pub fn scratch(&self) -> ShardedScratch {
        ShardedScratch {
            per_shard: vec![Vec::new(); self.shards.len()],
            cursors: Vec::with_capacity(self.shards.len()),
        }
    }

    /// Scans `payload` with every shard — in parallel on
    /// [`ShardedMatcher::cores`] scoped threads when `cores > 1`,
    /// sequentially on the calling thread otherwise — and merges the
    /// per-shard results into `out` in canonical `(end, pattern)` order
    /// with **global** pattern ids. `out` is cleared first; with a reused
    /// `scratch` the steady-state scan performs no allocation.
    pub fn scan_into(&self, payload: &[u8], scratch: &mut ShardedScratch, out: &mut Vec<Match>) {
        scratch.per_shard.resize_with(self.shards.len(), Vec::new);
        if self.cores <= 1 || self.shards.len() <= 1 {
            for (shard, buf) in self.shards.iter().zip(scratch.per_shard.iter_mut()) {
                self.scan_one(shard, payload, buf);
            }
        } else {
            self.scan_shards_parallel(payload, &mut scratch.per_shard);
        }
        merge_sorted(&scratch.per_shard, &mut scratch.cursors, out);
    }

    /// Fresh resumable state for one flow: every shard's registers at the
    /// fresh-flow value. Suspend/resume it through
    /// [`ShardedMatcher::scan_chunk_into`].
    pub fn flow_state(&self) -> ShardedScanState {
        ShardedScanState {
            per_shard: vec![ScanState::fresh(); self.shards.len()],
        }
    }

    /// Resumable scan: consumes `chunk` from `state` through **every**
    /// shard, **appending** the merged matches to `out` in canonical
    /// `(end, pattern)` order with stream-absolute ends and global
    /// pattern ids, and leaves `state` suspended for the flow's next
    /// chunk. Chunks are scanned on the calling thread: per-flow chunks
    /// are MTU-sized, where a per-chunk thread fan-out costs more than it
    /// hides — the parallel axis for streaming traffic is flows across
    /// cores ([`ShardedMatcher::scan_flows_with`]), not shards within a
    /// chunk.
    ///
    /// Appending chunk-canonical runs at increasing offsets keeps `out`
    /// globally canonical across the whole stream.
    ///
    /// # Panics
    ///
    /// Panics if `state` was created by a matcher with a different shard
    /// count.
    pub fn scan_chunk_into(
        &self,
        state: &mut ShardedScanState,
        chunk: &[u8],
        scratch: &mut ShardedScratch,
        out: &mut Vec<Match>,
    ) {
        self.scan_chunk_masked_into(state, chunk, scratch, out, u64::MAX);
    }

    /// [`ShardedMatcher::scan_chunk_into`] restricted to the shards
    /// selected by `mask` (bit `i` selects shard `i`; shards at index
    /// ≥ 64 always scan — see the merge fan-in cap). Unmasked lanes are
    /// untouched: their registers keep whatever stream position and
    /// in-flight state they held, so each lane is an independently
    /// resumable cursor. The two-stage window replay uses this to route
    /// a merged window only through the shards owning the flagged
    /// family, joining lanes later via
    /// [`ScanState::reset_at`]-style catch-up.
    ///
    /// # Panics
    ///
    /// Panics if `state` was created by a matcher with a different shard
    /// count.
    pub fn scan_chunk_masked_into(
        &self,
        state: &mut ShardedScanState,
        chunk: &[u8],
        scratch: &mut ShardedScratch,
        out: &mut Vec<Match>,
        mask: u64,
    ) {
        assert_eq!(
            state.per_shard.len(),
            self.shards.len(),
            "flow state belongs to a matcher with a different shard count"
        );
        scratch.per_shard.resize_with(self.shards.len(), Vec::new);
        for (i, ((shard, flow), buf)) in self
            .shards
            .iter()
            .zip(state.per_shard.iter_mut())
            .zip(scratch.per_shard.iter_mut())
            .enumerate()
        {
            buf.clear();
            if !lane_in_mask(i, mask) {
                continue;
            }
            let matcher = CompiledMatcher::with_shared_fold(
                &shard.automaton,
                &shard.set,
                self.fold,
                self.prefetch,
                self.prefilter,
                self.pairs,
                self.simd,
            );
            matcher.for_each_match_chunk(flow, chunk, |m| {
                buf.push(Match {
                    end: m.end,
                    pattern: shard.ids[m.pattern.index()],
                });
            });
        }
        merge_sorted_append(&scratch.per_shard, &mut scratch.cursors, out);
    }

    /// Resumable scan of exactly one lane — no always-on high lanes, no
    /// merge: matches append with global ids in this lane's canonical
    /// order. The catch-up primitive for masked window replay: a lane
    /// joining an in-progress window scans its private gap
    /// `[lane_offset, frontier)` alone while every other lane's cursor
    /// stays put.
    pub(crate) fn scan_lane_chunk_into(
        &self,
        state: &mut ShardedScanState,
        lane: usize,
        chunk: &[u8],
        out: &mut Vec<Match>,
    ) {
        let shard = &self.shards[lane];
        let flow = &mut state.per_shard[lane];
        let matcher = CompiledMatcher::with_shared_fold(
            &shard.automaton,
            &shard.set,
            self.fold,
            self.prefetch,
            self.prefilter,
            self.pairs,
            self.simd,
        );
        matcher.for_each_match_chunk(flow, chunk, |m| {
            out.push(Match {
                end: m.end,
                pattern: shard.ids[m.pattern.index()],
            });
        });
    }

    /// For every pattern in the built set, the index of the shard that
    /// owns it — the map the two-stage builder turns into per-family
    /// shard masks for window replay subsetting.
    pub fn shard_of(&self) -> Vec<u32> {
        let total: usize = self.shards.iter().map(|s| s.ids.len()).sum();
        let mut map = vec![0u32; total];
        for (si, shard) in self.shards.iter().enumerate() {
            for id in &shard.ids {
                map[id.index()] = si as u32;
            }
        }
        map
    }

    /// Streaming batch scan with per-flow state carried between batches —
    /// the continuous-traffic shape: `payloads[i]` is the next chunk of
    /// the flow whose state is `states[i]`. Flows are partitioned across
    /// [`ShardedMatcher::cores`] workers **by flow index** (not by bytes,
    /// as [`ShardedMatcher::scan_stream_with`] balances one-shot
    /// batches), so a flow that stays at the same index across batches is
    /// pinned to the same core — its shard automata and its state stay
    /// warm in that core's cache. `out` is index-aligned with `payloads`
    /// and holds **this batch's** matches (stream-absolute ends, global
    /// ids); accumulate across batches caller-side if needed.
    ///
    /// # Panics
    ///
    /// Panics if `states` and `payloads` lengths differ, or any state has
    /// the wrong shard count.
    pub fn scan_flows_with<P: AsRef<[u8]> + Sync>(
        &self,
        payloads: &[P],
        states: &mut [ShardedScanState],
        scratch: &mut StreamScratch,
        out: &mut Vec<Vec<Match>>,
    ) {
        assert_eq!(
            payloads.len(),
            states.len(),
            "one state per flow payload required"
        );
        out.resize_with(payloads.len(), Vec::new);
        for buf in out.iter_mut() {
            buf.clear();
        }
        if payloads.is_empty() {
            return;
        }
        let workers = self.cores.clamp(1, payloads.len());
        scratch.per_worker.resize_with(workers, ShardedScratch::default);
        if workers <= 1 {
            let worker_scratch = &mut scratch.per_worker[0];
            for ((payload, state), slot) in
                payloads.iter().zip(states.iter_mut()).zip(out.iter_mut())
            {
                self.scan_chunk_into(state, payload.as_ref(), worker_scratch, slot);
            }
            return;
        }
        // Even contiguous split by flow *index*: stable across batches,
        // which is what pins a flow to one core.
        let n = payloads.len();
        let mut workers_vec = Vec::with_capacity(workers);
        let mut rest_out: &mut [Vec<Match>] = out.as_mut_slice();
        let mut rest_states: &mut [ShardedScanState] = states;
        let mut lo = 0usize;
        for (w, worker_scratch) in scratch.per_worker.iter_mut().enumerate() {
            let hi = (w + 1) * n / workers;
            let (chunk_out, tail_out) = rest_out.split_at_mut(hi - lo);
            rest_out = tail_out;
            let (chunk_states, tail_states) = rest_states.split_at_mut(hi - lo);
            rest_states = tail_states;
            let chunk_payloads = &payloads[lo..hi];
            lo = hi;
            workers_vec.push(move || {
                for ((payload, state), slot) in chunk_payloads
                    .iter()
                    .zip(chunk_states.iter_mut())
                    .zip(chunk_out.iter_mut())
                {
                    self.scan_chunk_into(state, payload.as_ref(), worker_scratch, slot);
                }
            });
        }
        fan_out(workers_vec);
    }

    /// Fresh stream scratch for [`ShardedMatcher::scan_stream_with`].
    pub fn stream_scratch(&self) -> StreamScratch {
        StreamScratch::default()
    }

    /// Scans a batch of payloads — the millions-of-flows shape. Payloads
    /// are partitioned contiguously across [`ShardedMatcher::cores`]
    /// workers (balanced by payload bytes); each worker runs **all**
    /// shards over its own payloads, so the small automata stay resident
    /// in that core's cache while results never cross threads. `out` is
    /// index-aligned with `payloads`, each entry in canonical order with
    /// global ids.
    ///
    /// Allocates fresh per-worker scratch each call; ingest loops should
    /// hold a [`StreamScratch`] and call
    /// [`ShardedMatcher::scan_stream_with`].
    pub fn scan_stream_into<P: AsRef<[u8]> + Sync>(
        &self,
        payloads: &[P],
        out: &mut Vec<Vec<Match>>,
    ) {
        let mut scratch = self.stream_scratch();
        self.scan_stream_with(payloads, &mut scratch, out);
    }

    /// [`ShardedMatcher::scan_stream_into`] with caller-owned per-worker
    /// buffers — the steady-state shape for loops that scan batch after
    /// batch.
    pub fn scan_stream_with<P: AsRef<[u8]> + Sync>(
        &self,
        payloads: &[P],
        scratch: &mut StreamScratch,
        out: &mut Vec<Vec<Match>>,
    ) {
        out.resize_with(payloads.len(), Vec::new);
        for buf in out.iter_mut() {
            buf.clear();
        }
        if payloads.is_empty() {
            return;
        }
        let workers = self.cores.clamp(1, payloads.len());
        scratch.per_worker.resize_with(workers, ShardedScratch::default);
        if workers <= 1 {
            let worker_scratch = &mut scratch.per_worker[0];
            for (payload, slot) in payloads.iter().zip(out.iter_mut()) {
                self.scan_sequential(payload.as_ref(), worker_scratch, slot);
            }
            return;
        }
        let costs: Vec<usize> = payloads.iter().map(|p| p.as_ref().len()).collect();
        let bounds = chunk_bounds(&costs, workers);
        let mut workers_vec = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [Vec<Match>] = out.as_mut_slice();
        for (window, worker_scratch) in bounds.windows(2).zip(scratch.per_worker.iter_mut()) {
            let (lo, hi) = (window[0], window[1]);
            let (chunk_out, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let chunk_payloads = &payloads[lo..hi];
            workers_vec.push(move || {
                for (payload, slot) in chunk_payloads.iter().zip(chunk_out.iter_mut()) {
                    self.scan_sequential(payload.as_ref(), worker_scratch, slot);
                }
            });
        }
        fan_out(workers_vec);
    }

    /// Scans `payload` with a single shard, reporting **global** pattern
    /// ids in canonical order. Public so callers can drive shards on
    /// their own executor (and so benches can time shards individually —
    /// the per-core cost a multi-core deployment pays).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    pub fn scan_shard_into(&self, shard: usize, payload: &[u8], out: &mut Vec<Match>) {
        let shard = &self.shards[shard];
        self.scan_one(shard, payload, out);
    }

    /// All shards sequentially on the calling thread + merge — the
    /// per-worker body of the stream entry point.
    fn scan_sequential(&self, payload: &[u8], scratch: &mut ShardedScratch, out: &mut Vec<Match>) {
        scratch.per_shard.resize_with(self.shards.len(), Vec::new);
        for (shard, buf) in self.shards.iter().zip(scratch.per_shard.iter_mut()) {
            self.scan_one(shard, payload, buf);
        }
        merge_sorted(&scratch.per_shard, &mut scratch.cursors, out);
    }

    /// Fan the shards out over scoped threads, one contiguous
    /// arena-balanced chunk per core.
    fn scan_shards_parallel(&self, payload: &[u8], per_shard: &mut [Vec<Match>]) {
        let mut workers = Vec::with_capacity(self.chunk_bounds.len() - 1);
        let mut rest = per_shard;
        for window in self.chunk_bounds.windows(2) {
            let (lo, hi) = (window[0], window[1]);
            let (chunk_bufs, tail) = rest.split_at_mut(hi - lo);
            rest = tail;
            let shards = &self.shards[lo..hi];
            workers.push(move || {
                for (shard, buf) in shards.iter().zip(chunk_bufs.iter_mut()) {
                    self.scan_one(shard, payload, buf);
                }
            });
        }
        fan_out(workers);
    }

    /// One shard's scan: compiled fast path, local ids translated to
    /// global as matches stream out.
    fn scan_one(&self, shard: &Shard, payload: &[u8], buf: &mut Vec<Match>) {
        buf.clear();
        let matcher = CompiledMatcher::with_shared_fold(
            &shard.automaton,
            &shard.set,
            self.fold,
            self.prefetch,
            self.prefilter,
            self.pairs,
            self.simd,
        );
        matcher.for_each_match(payload, |m| {
            buf.push(Match {
                end: m.end,
                pattern: shard.ids[m.pattern.index()],
            });
        });
    }
}

impl MultiMatcher for ShardedMatcher {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.find_all_into(haystack, &mut out);
        out
    }

    /// Allocates a fresh [`ShardedScratch`] per call; production loops
    /// should hold one and call [`ShardedMatcher::scan_into`] instead.
    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        let mut scratch = self.scratch();
        self.scan_into(haystack, &mut scratch, out);
    }

    /// Early-exit fast path: shards are probed sequentially on the
    /// calling thread (spawning threads to maybe-exit-early would cost
    /// more than it hides) and the first accepting shard wins.
    fn is_match(&self, haystack: &[u8]) -> bool {
        self.shards.iter().any(|shard| {
            CompiledMatcher::with_shared_fold(
                &shard.automaton,
                &shard.set,
                self.fold,
                self.prefetch,
                self.prefilter,
                self.pairs,
                self.simd,
            )
            .is_match(haystack)
        })
    }
}

/// Runs the worker closures on scoped threads — all but the last on
/// spawned threads, the last on the calling thread, so a fan-out of N
/// workers occupies exactly N cores. Shared by both scan shapes so the
/// spawn policy lives in one place.
fn fan_out<F: FnMut() + Send>(workers: Vec<F>) {
    let n = workers.len();
    std::thread::scope(|scope| {
        for (i, mut worker) in workers.into_iter().enumerate() {
            if i + 1 == n {
                worker();
            } else {
                scope.spawn(worker);
            }
        }
    });
}

/// Splits `costs.len()` items into at most `max_chunks` contiguous chunks
/// with roughly equal cost sums, returning the boundary indices
/// (`[0, …, len]`, every chunk non-empty).
fn chunk_bounds(costs: &[usize], max_chunks: usize) -> Vec<usize> {
    let n = costs.len();
    let k = max_chunks.clamp(1, n.max(1));
    let total = costs.iter().sum::<usize>().max(1);
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0usize);
    let mut acc = 0usize;
    for (i, &c) in costs.iter().enumerate() {
        acc += c;
        let closed = bounds.len(); // chunks closed once we cut here
        let items_left = n - (i + 1);
        let chunks_left = k - closed;
        if closed < k
            && (acc as u128 * k as u128 >= total as u128 * closed as u128
                || items_left == chunks_left)
        {
            bounds.push(i + 1);
        }
    }
    bounds.push(n);
    bounds
}

/// K-way merge of per-shard canonical match buffers into one canonical
/// stream. Shards partition the pattern set, so no two buffers ever hold
/// the same `(end, pattern)` — the merge is a strict interleave.
///
/// Linear scan over the k cursors per emitted match — O(matches × k).
/// k is the shard count (≈ cores, capped at 64), so even match-heavy
/// scans pay a few comparisons per match, dwarfed by the per-byte scan
/// itself; a heap would add allocation and indirection to save work
/// that does not show up in profiles at these k.
fn merge_sorted(bufs: &[Vec<Match>], cursors: &mut Vec<usize>, out: &mut Vec<Match>) {
    out.clear();
    merge_sorted_append(bufs, cursors, out);
}

/// [`merge_sorted`] without the clear — the chunk-scan path appends each
/// chunk's canonical run after the previous chunks' (runs are at strictly
/// increasing offsets, so concatenation stays canonical).
fn merge_sorted_append(bufs: &[Vec<Match>], cursors: &mut Vec<usize>, out: &mut Vec<Match>) {
    cursors.clear();
    cursors.resize(bufs.len(), 0);
    out.reserve(bufs.iter().map(Vec::len).sum());
    loop {
        let mut best: Option<(usize, Match)> = None;
        for (k, buf) in bufs.iter().enumerate() {
            if let Some(&m) = buf.get(cursors[k]) {
                if best.is_none_or(|(_, b)| m < b) {
                    best = Some((k, m));
                }
            }
        }
        let Some((k, m)) = best else { break };
        cursors[k] += 1;
        out.push(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledAutomaton;

    fn build_all(patterns: &[&str], cores: usize) -> (PatternSet, ShardedMatcher) {
        let set = PatternSet::new(patterns).unwrap();
        let sharded = ShardedMatcher::build(&set, &ShardedConfig::with_cores(cores)).unwrap();
        (set, sharded)
    }

    fn reference(set: &PatternSet, text: &[u8]) -> Vec<Match> {
        let dfa = Dfa::build(set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let compiled = CompiledAutomaton::compile(&reduced);
        CompiledMatcher::new(&compiled, set).find_all(text)
    }

    #[test]
    fn matches_figure1_across_core_counts() {
        for cores in [1usize, 2, 3, 4] {
            let (set, sharded) = build_all(&["he", "she", "his", "hers"], cores);
            let text = b"ushers and she said his hers";
            assert_eq!(
                sharded.find_all(text),
                reference(&set, text),
                "cores={cores}"
            );
        }
    }

    #[test]
    fn single_core_spawns_no_threads_and_agrees() {
        let (set, sharded) = build_all(&["alpha", "beta", "gamma", "delta"], 1);
        assert_eq!(sharded.cores(), 1);
        let text = b"alphabetagammadelta alpha";
        assert_eq!(sharded.find_all(text), reference(&set, text));
    }

    #[test]
    fn global_ids_survive_sharding() {
        let (set, sharded) = build_all(&["aaa", "bbb", "ccc", "ddd", "eee"], 3);
        let found = sharded.find_all(b"xxcccxx");
        assert_eq!(found.len(), 1);
        assert_eq!(set.pattern(found[0].pattern), b"ccc");
    }

    #[test]
    fn scratch_reuse_is_allocation_free_steady_state() {
        let (_, sharded) = build_all(&["he", "she", "his", "hers"], 2);
        let mut scratch = sharded.scratch();
        let mut out = Vec::new();
        sharded.scan_into(b"ushers and she said his hers", &mut scratch, &mut out);
        assert_eq!(out.len(), 8);
        let cap = out.capacity();
        let inner_caps: Vec<usize> = scratch.per_shard.iter().map(Vec::capacity).collect();
        sharded.scan_into(b"ushers", &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out.capacity(), cap, "output buffer must be reused");
        let inner_after: Vec<usize> = scratch.per_shard.iter().map(Vec::capacity).collect();
        assert_eq!(inner_caps, inner_after, "shard buffers must be reused");
    }

    #[test]
    fn stream_scan_equals_per_payload_scan() {
        let (set, sharded) = build_all(&["he", "she", "his", "hers", "hex"], 2);
        let payloads: Vec<&[u8]> = vec![
            b"ushers",
            b"",
            b"she said his",
            b"hhhh",
            b"hexadecimal hers",
            b"x",
        ];
        let mut out = Vec::new();
        sharded.scan_stream_into(&payloads, &mut out);
        assert_eq!(out.len(), payloads.len());
        for (payload, got) in payloads.iter().zip(&out) {
            assert_eq!(got, &reference(&set, payload), "payload {payload:?}");
        }
    }

    #[test]
    fn stream_scan_reuses_outer_buffers() {
        let (_, sharded) = build_all(&["he", "she"], 2);
        let payloads: Vec<&[u8]> = vec![b"he he he", b"she"];
        let mut out = Vec::new();
        sharded.scan_stream_into(&payloads, &mut out);
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        sharded.scan_stream_into(&payloads, &mut out);
        assert_eq!(caps, out.iter().map(Vec::capacity).collect::<Vec<_>>());
    }

    #[test]
    fn stream_scan_with_reuses_worker_scratch() {
        let (set, sharded) = build_all(&["he", "she", "his", "hers"], 2);
        let payloads: Vec<&[u8]> = vec![b"ushers", b"his hers", b"nothing", b"she"];
        let mut scratch = sharded.stream_scratch();
        let mut out = Vec::new();
        sharded.scan_stream_with(&payloads, &mut scratch, &mut out);
        for (payload, got) in payloads.iter().zip(&out) {
            assert_eq!(got, &reference(&set, payload));
        }
        // Second batch through the same scratch: identical results, and
        // the per-worker shard buffers keep their capacity.
        let caps: Vec<Vec<usize>> = scratch
            .per_worker
            .iter()
            .map(|s| s.per_shard.iter().map(Vec::capacity).collect())
            .collect();
        sharded.scan_stream_with(&payloads, &mut scratch, &mut out);
        for (payload, got) in payloads.iter().zip(&out) {
            assert_eq!(got, &reference(&set, payload));
        }
        let caps_after: Vec<Vec<usize>> = scratch
            .per_worker
            .iter()
            .map(|s| s.per_shard.iter().map(Vec::capacity).collect())
            .collect();
        assert_eq!(caps, caps_after, "worker scratch must be reused");
    }

    #[test]
    fn prefilter_on_by_default_and_equivalent_when_off() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let on = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
        assert!(on.prefilter());
        for s in 0..on.shard_count() {
            assert!(on.shard_anchors(s).is_some(), "shard {s} missing anchors");
        }
        let mut config = ShardedConfig::with_cores(2);
        config.prefilter = false;
        let off = ShardedMatcher::build(&set, &config).unwrap();
        assert!(!off.prefilter());
        assert!(off.shard_anchors(0).is_none());
        let text = b"zzzzzzzzzzzzushers and she said his hers";
        assert_eq!(on.find_all(text), off.find_all(text));
        assert_eq!(on.find_all(text), reference(&set, text));
        assert_eq!(on.is_match(text), off.is_match(text));
    }

    #[test]
    fn shard_anchor_sets_skip_at_least_as_much_as_the_master() {
        // A shard holds a subset of the patterns, so every byte the
        // master's anchor analysis can skip, the shard's can too — the
        // reason sharded scanning fast-forwards *more* of the same
        // traffic.
        let patterns: Vec<String> = (0..64)
            .map(|i| format!("{:02x}pat{i}", i * 7 % 251))
            .collect();
        let set = PatternSet::new(&patterns).unwrap();
        let mut config = ShardedConfig::with_cores(4);
        config.budget_bytes = 64 * 1024; // force several shards
        let sharded = ShardedMatcher::build(&set, &config).unwrap();
        assert!(sharded.shard_count() > 1);
        let dfa = Dfa::build(&set);
        let master = AnchorSet::build(&dfa, &set, config.anchor_horizon);
        for s in 0..sharded.shard_count() {
            let anchors = sharded.shard_anchors(s).expect("prefilter on");
            assert!(
                anchors.skippable_bytes() >= master.skippable_bytes(),
                "shard {s}: {} skippable < master {}",
                anchors.skippable_bytes(),
                master.skippable_bytes()
            );
            for b in 0..=255u8 {
                if master.is_skippable(b) {
                    assert!(anchors.is_skippable(b), "shard {s} lost skip byte {b:#04x}");
                }
            }
        }
    }

    #[test]
    fn prefetch_variant_is_equivalent() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let mut config = ShardedConfig::with_cores(2);
        config.prefetch = true;
        let sharded = ShardedMatcher::build(&set, &config).unwrap();
        assert!(sharded.prefetch());
        let text = b"ushers and she said his hers";
        assert_eq!(sharded.find_all(text), reference(&set, text));
    }

    #[test]
    fn more_cores_than_patterns() {
        let (set, sharded) = build_all(&["ab", "cd"], 8);
        assert!(sharded.shard_count() <= 2);
        let text = b"abcdabcd";
        assert_eq!(sharded.find_all(text), reference(&set, text));
    }

    #[test]
    fn is_match_early_exit_agrees() {
        let (_, sharded) = build_all(&["he", "she", "his", "hers"], 2);
        assert!(sharded.is_match(b"this"));
        assert!(!sharded.is_match(b"hx sx ex"));
        assert!(!sharded.is_match(b""));
    }

    #[test]
    fn shard_scan_union_covers_everything() {
        let (set, sharded) = build_all(&["alpha", "beta", "gamma", "delta"], 2);
        let text = b"alphabetagammadelta";
        let mut union: Vec<Match> = Vec::new();
        let mut buf = Vec::new();
        for s in 0..sharded.shard_count() {
            sharded.scan_shard_into(s, text, &mut buf);
            union.extend_from_slice(&buf);
        }
        union.sort_unstable();
        assert_eq!(union, reference(&set, text));
    }

    #[test]
    fn memory_accounting_sums_shards() {
        let (_, sharded) = build_all(&["he", "she", "his", "hers"], 2);
        let per: usize = (0..sharded.shard_count())
            .map(|s| sharded.shard_memory_bytes(s))
            .sum();
        assert_eq!(per, sharded.memory_bytes());
        let patterns: usize = (0..sharded.shard_count())
            .map(|s| sharded.shard_len(s))
            .sum();
        assert_eq!(patterns, 4);
    }

    #[test]
    fn chunk_bounds_properties() {
        for (costs, k) in [
            (vec![1usize, 1, 1, 1], 2usize),
            (vec![5, 1, 1], 3),
            (vec![1, 1, 5], 3),
            (vec![100, 1, 1, 1], 4),
            (vec![7], 4),
            (vec![3, 3, 3, 3, 3, 3, 3], 3),
        ] {
            let bounds = chunk_bounds(&costs, k);
            assert_eq!(*bounds.first().unwrap(), 0);
            assert_eq!(*bounds.last().unwrap(), costs.len());
            assert!(bounds.len() - 1 <= k.min(costs.len()), "{costs:?} k={k}");
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "empty chunk in {bounds:?} for {costs:?} k={k}"
            );
        }
    }

    #[test]
    fn chunked_scan_equals_whole_payload() {
        let (set, sharded) = build_all(&["he", "she", "his", "hers", "hex"], 2);
        let payload = b"ushers and she said hex his hers";
        let whole = reference(&set, payload);
        let mut scratch = sharded.scratch();
        for cut in 0..=payload.len() {
            let mut flow = sharded.flow_state();
            let mut got = Vec::new();
            sharded.scan_chunk_into(&mut flow, &payload[..cut], &mut scratch, &mut got);
            sharded.scan_chunk_into(&mut flow, &payload[cut..], &mut scratch, &mut got);
            assert_eq!(got, whole, "split at {cut} diverged");
            assert_eq!(flow.offset(), payload.len() as u64);
        }
    }

    #[test]
    fn flow_state_shard_count_mismatch_panics() {
        let (_, two) = build_all(&["aa", "bb", "cc", "dd"], 2);
        let (_, one) = build_all(&["aa"], 1);
        let mut wrong = one.flow_state();
        let mut scratch = two.scratch();
        let mut out = Vec::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            two.scan_chunk_into(&mut wrong, b"aabb", &mut scratch, &mut out)
        }));
        assert!(err.is_err(), "mismatched flow state must be rejected");
    }

    #[test]
    fn flow_batches_carry_state_between_batches() {
        let (set, sharded) = build_all(&["he", "she", "his", "hers"], 2);
        // Two flows; each flow's payload is delivered in two batches cut
        // mid-pattern. Batch results must stitch to the whole-payload
        // matches with stream-absolute offsets.
        let flows: Vec<&[u8]> = vec![b"usher", b"this hers"];
        let cut = 3usize;
        let mut states: Vec<ShardedScanState> =
            (0..flows.len()).map(|_| sharded.flow_state()).collect();
        let mut scratch = sharded.stream_scratch();
        let mut accumulated: Vec<Vec<Match>> = vec![Vec::new(); flows.len()];
        for batch in 0..2 {
            let chunks: Vec<&[u8]> = flows
                .iter()
                .map(|f| if batch == 0 { &f[..cut] } else { &f[cut..] })
                .collect();
            let mut out = Vec::new();
            sharded.scan_flows_with(&chunks, &mut states, &mut scratch, &mut out);
            for (acc, batch_matches) in accumulated.iter_mut().zip(&out) {
                acc.extend_from_slice(batch_matches);
            }
        }
        for (flow, got) in flows.iter().zip(&accumulated) {
            assert_eq!(got, &reference(&set, flow), "flow {flow:?}");
        }
        for state in &states {
            assert!(state.shard_count() > 0);
        }
    }

    #[test]
    fn single_pattern_over_budget_surfaces_from_build() {
        let set = PatternSet::new([&"z".repeat(3000)]).unwrap();
        let mut config = ShardedConfig::with_cores(2);
        config.budget_bytes = 1024; // below any single-pattern floor
        let err = ShardedMatcher::build(&set, &config).unwrap_err();
        assert!(err.to_string().contains("per-shard budget"), "{err}");
    }

    #[test]
    fn pairs_on_by_default_and_equivalent_when_off() {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let on = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
        assert!(on.pairs());
        for s in 0..on.shard_count() {
            let pt = on.shard_pairs(s).expect("shard pair table");
            assert!(pt.has_region_rows(), "shard {s} missing region rows");
        }
        let mut config = ShardedConfig::with_cores(2);
        config.pairs = false;
        let off = ShardedMatcher::build(&set, &config).unwrap();
        assert!(!off.pairs());
        assert!(off.shard_pairs(0).is_none());
        let text = b"zzzzzzzzzzzzushers and she said his hers";
        assert_eq!(on.find_all(text), off.find_all(text));
        assert_eq!(on.find_all(text), reference(&set, text));
        assert_eq!(on.is_match(text), off.is_match(text));
    }

    #[test]
    fn profiled_build_is_equivalent() {
        let set = PatternSet::new(["he", "she", "his", "hers", "hex"]).unwrap();
        let sample = b"xxhe hers zzz hex shishershe".repeat(64);
        let profiled =
            ShardedMatcher::build_with_profile(&set, &ShardedConfig::with_cores(2), &sample)
                .unwrap();
        let plain = ShardedMatcher::build(&set, &ShardedConfig::with_cores(2)).unwrap();
        let text = b"ushers and she said hex his hers";
        assert_eq!(profiled.find_all(text), plain.find_all(text));
        assert_eq!(profiled.find_all(text), reference(&set, text));
    }

    #[test]
    fn pair_budget_below_region_rows_disables_layer() {
        let set = PatternSet::new(["he", "she"]).unwrap();
        let mut config = ShardedConfig::with_cores(1);
        config.pair_budget_bytes = 0;
        let m = ShardedMatcher::build(&set, &config).unwrap();
        // Flag stays on, but no shard carries a usable table.
        assert!(m.shard_pairs(0).is_none());
        assert_eq!(m.find_all(b"ushers"), reference(&set, b"ushers"));
    }

    #[test]
    fn autotune_chooser_follows_the_measured_cost_model() {
        use dpi_automaton::ShardCostModel;
        // Synthetic measurement derived from the cost model: scanning
        // is flat-rate while the shard fits a 24 KiB "cache", then
        // degrades superlinearly (miss rate × miss latency both grow)
        // — the cliff shape the real probe measures. A merely linear
        // penalty would make shard count a wash by construction
        // (halving per-shard cost while doubling shards per core), and
        // the chooser must *not* grow on a wash.
        let model = ShardCostModel::default();
        let synthetic = |sub: &PatternSet| -> f64 {
            let bytes = model.estimate(sub) as f64;
            let penalty = (bytes / 24_576.0).max(1.0);
            1e-9 * penalty * penalty
        };

        // Small set: every shard already fits — the chooser must stay
        // at `cores` shards (more shards would only multiply work).
        let small: Vec<String> = (0..24)
            .map(|i| format!("{}p{i:02}", (b'a' + (i % 6) as u8) as char))
            .collect();
        let small = PatternSet::new(&small).unwrap();
        let config = ShardedConfig::autotune_shards_with(&small, 4, synthetic).unwrap();
        assert_eq!(config.shards_hint, 4);

        // Large set: one shard blows the synthetic cache, and halving
        // it pays more than the doubled shard count costs — the
        // chooser must grow past the core count.
        let large: Vec<String> = (0..4000)
            .map(|i| format!("{}needle{i:05}x", (b'a' + (i % 23) as u8) as char))
            .collect();
        let large = PatternSet::new(&large).unwrap();
        let config = ShardedConfig::autotune_shards_with(&large, 4, synthetic).unwrap();
        assert!(
            config.shards_hint > 4,
            "expected growth past the core count, got {}",
            config.shards_hint
        );
        // And the resulting hint is honoured by the planner.
        let m = ShardedMatcher::build(&large, &config).unwrap();
        assert!(m.shard_count() >= config.shards_hint);
    }

    #[test]
    fn autotune_measured_probe_runs_end_to_end() {
        // The real (timed) probe on a small set: just assert it picks a
        // sane count and the config builds.
        let set = diverse_probe_set();
        let config = ShardedConfig::autotune_shards(&set, 2).unwrap();
        assert!(config.shards_hint >= 2 || set.len() < 2);
        let m = ShardedMatcher::build(&set, &config).unwrap();
        assert_eq!(m.find_all(b"alphabet soup"), reference(&set, b"alphabet soup"));
    }

    fn diverse_probe_set() -> PatternSet {
        let strings: Vec<String> = (0..32)
            .map(|i| format!("{}tune{i:03}", (b'a' + (i % 8) as u8) as char))
            .collect();
        PatternSet::new(&strings).unwrap()
    }

    #[test]
    fn merge_is_canonical() {
        let a = vec![
            Match { end: 1, pattern: PatternId(0) },
            Match { end: 4, pattern: PatternId(2) },
        ];
        let b = vec![
            Match { end: 2, pattern: PatternId(1) },
            Match { end: 4, pattern: PatternId(1) },
        ];
        let mut cursors = Vec::new();
        let mut out = Vec::new();
        merge_sorted(&[a, b], &mut cursors, &mut out);
        let ends: Vec<(usize, u32)> = out.iter().map(|m| (m.end, m.pattern.0)).collect();
        assert_eq!(ends, vec![(1, 0), (2, 1), (4, 1), (4, 2)]);
    }
}
