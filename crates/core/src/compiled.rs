//! Compiled flat-memory scan engine: the software fast path.
//!
//! [`ReducedAutomaton`] is a *build-time* structure — per-state `Vec`s,
//! `Option<u8>` history registers, a binary search per byte. That shape is
//! right for constructing, verifying and packing the automaton, but it is
//! the wrong shape for scanning: every byte pays pointer chases through
//! nested `Vec`s, a `binary_search_by_key` over at most 13 entries (where
//! a linear sweep is cheaper), and a branchy ladder of `Option` matches in
//! [`DefaultLut::resolve`]. The paper's whole argument is *one byte per
//! cycle, unconditionally* — the hardware achieves it with flat memories
//! and parallel compares, and the software runtime should mirror that.
//!
//! [`CompiledAutomaton`] is the one-time compilation of a
//! [`ReducedAutomaton`] into pointer-free parallel arrays:
//!
//! - **stored transitions** live in one CSR arena — `offsets` indexes into
//!   parallel `keys`/`targets` slices. Rows are byte-sorted and scanned
//!   linearly (the paper's engines cap rows at 13 pointers; a linear sweep
//!   over a cache-resident row beats binary search at that size). States
//!   whose row exceeds [`DENSE_ROW_THRESHOLD`] (possible only under
//!   non-paper configurations such as [`DtpConfig::NONE`]) are escalated
//!   to a dense 256-entry row, restoring O(1) lookup;
//! - **the default-transition table** is compiled into sentinel-padded,
//!   fixed-stride compare arrays resolved *branch-free*: history is kept
//!   in two raw `u32` registers where [`HIST_NONE`] (`0x100`, one past any
//!   byte) encodes "register not yet valid". Padding slots hold sentinel
//!   keys no history can equal, so every row resolves with the same
//!   straight-line compare/select sequence — the software analogue of the
//!   hardware's parallel comparators, including the paper's start-signal
//!   masking (an invalid register simply never compares equal);
//! - **match outputs** are a CSR `(offsets, pattern_ids)` pair; the
//!   per-byte hot path is a single offset comparison.
//!
//! [`CompiledMatcher`] scans packets over the compiled form with an
//! allocation-free [`CompiledMatcher::scan_into`], a visitor API, and
//! early-exit `is_match`/`count` fast paths. [`BatchScanner`] interleaves
//! several packets round-robin through independent state registers — the
//! software mirror of the paper's parallel engines (see its docs for the
//! measured cache-contention caveat that hardware ports do not have).
//!
//! Equivalence with [`DtpMatcher`](crate::DtpMatcher) (and therefore with
//! the full DFA) is asserted state-trace-for-state-trace by
//! `tests/equivalence.rs` and `tests/compiled_engine.rs`.
//!
//! [`DefaultLut::resolve`]: crate::DefaultLut::resolve
//! [`DtpConfig::NONE`]: crate::DtpConfig::NONE

use crate::reduce::ReducedAutomaton;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use dpi_automaton::simd::SimdToken;
use dpi_automaton::{
    AnchorSet, Match, MultiMatcher, PairTable, PatternId, PatternSet, ScanState, StateId,
};

/// History-register value meaning "no byte observed yet" (one past any
/// byte value, so it can never compare equal to a stored compare key).
pub const HIST_NONE: u32 = 0x100;

/// Stored-pointer count above which a state's transitions are compiled
/// into a dense 256-entry row instead of a CSR row.
///
/// The paper's hardware handles at most 13 pointers per state, so under
/// [`DtpConfig::PAPER`](crate::DtpConfig::PAPER) every row stays sparse;
/// dense rows only materialize for ablation configurations (e.g.
/// [`DtpConfig::NONE`](crate::DtpConfig::NONE)) where a state can store
/// up to 256 pointers and a linear sweep would no longer be constant-ish.
pub const DENSE_ROW_THRESHOLD: usize = 16;

/// Sentinel compare key for padded depth-2/3 slots: depth-2 history
/// registers are at most [`HIST_NONE`] and packed depth-3 pairs are at
/// most 17 bits, so no runtime history can equal it.
const LUT_PAD: u32 = u32::MAX;

/// Marker in `dense_of` for states without a dense row.
const NO_DENSE: u32 = u32::MAX;

/// Marker in a dense row for "no stored pointer — fall through to the
/// default-transition resolution".
const DENSE_MISS: u32 = u32::MAX;

/// Bytes the prefilter lane walks after its first failed SWAR window
/// probe before probing again (one window's worth — cheap to re-check).
const LANE_PROBE_MIN: usize = 8;

/// Walk-run cap between window probes while probes keep failing: long
/// enough to amortize the probe to noise under candidate saturation
/// (the 6,275-rule master leaves only 38 skippable byte values — its
/// probes essentially never succeed), short enough to catch the next
/// skippable run within a packet's worth of bytes. Swept 64/128/256 on
/// the clean workloads; 128 is the knee.
const LANE_PROBE_MAX: usize = 128;

/// Bit set in every *stored* target word whose destination state accepts
/// at least one pattern.
///
/// [`CompiledAutomaton::step`] and [`CompiledAutomaton::resolve`] return
/// **tagged** state words: bits 0..31 are the state index, bit 31 is this
/// flag. Folding the accept bit into the transition word the scan loop
/// already loaded means the (overwhelmingly common) non-accepting step
/// touches no output array at all; only flagged steps read the match CSR.
/// This caps automata at 2³¹ − 2 states, far beyond any DPI workload.
pub const OUTPUT_FLAG: u32 = 1 << 31;

/// Mask extracting the state index from a tagged transition word.
pub const STATE_MASK: u32 = OUTPUT_FLAG - 1;

// The pair lane reads [`PairTable::FIN_ACCEPT`] directly as a tagged
// accept bit; the two encodings must stay in lockstep.
const _: () = assert!(PairTable::FIN_ACCEPT == OUTPUT_FLAG);

/// A [`ReducedAutomaton`] compiled into flat, pointer-free parallel
/// arrays for scanning. Build once with [`CompiledAutomaton::compile`],
/// scan with [`CompiledMatcher`] or [`BatchScanner`].
#[derive(Debug, Clone)]
pub struct CompiledAutomaton {
    // --- stored transitions: CSR arena + dense escape hatch ---
    /// `states + 1` offsets into `keys`/`targets`.
    offsets: Vec<u32>,
    /// Transition bytes, row-major, byte-sorted within a row.
    keys: Vec<u8>,
    /// Transition targets, parallel to `keys`.
    targets: Vec<u32>,
    /// Per-state dense-row index, or [`NO_DENSE`].
    dense_of: Vec<u32>,
    /// Dense rows, 256 entries each; [`DENSE_MISS`] defers to the LUT.
    dense: Vec<u32>,
    /// `true` when any dense row exists. Hoisted out of the per-byte path:
    /// paper-config automata have none, and this flag (register-resident
    /// after the first load) lets their scan loop skip the per-state
    /// `dense_of` lookup entirely.
    has_dense: bool,

    // --- compiled default-transition table ---
    /// One interleaved row record per input byte value, `row_len` words
    /// each: `[d1, k₀, t₀, k₁, t₁, …]` — the depth-1 default followed by
    /// `d2_stride` then `d3_stride` (compare-key, target) pairs, padded
    /// with [`LUT_PAD`] keys. Depth-2 keys are the previous byte; depth-3
    /// keys are the packed pair `(prev2 << 8) | prev`. Interleaving keeps
    /// a whole row (11 words under the paper's `k2 = 4, k3 = 1`) on one
    /// or two cache lines — the software analogue of the hardware reading
    /// one LUT word per character.
    lut: Vec<u32>,
    /// Words per LUT row: `1 + 2 * (d2_stride + d3_stride)`.
    row_len: usize,
    /// Depth-2 slots per input byte.
    d2_stride: usize,
    /// Depth-3 slots per input byte.
    d3_stride: usize,

    // --- match outputs: CSR ---
    /// `states + 1` offsets into `out_patterns`.
    out_offsets: Vec<u32>,
    /// Flattened output lists, in pattern-id order per state.
    out_patterns: Vec<PatternId>,

    // --- clean-traffic fast lane ---
    /// Anchor-byte analysis enabling the SWAR skip lane (see
    /// [`AnchorSet`]); `None` when compiled without
    /// [`CompiledAutomaton::compile_with_prefilter`].
    prefilter: Option<AnchorSet>,

    // --- stride-2 fast lane ---
    /// Budgeted hot-state pair rows enabling the stride-2 pair-stepping
    /// lane (see [`PairTable`]); `None` unless attached with
    /// [`CompiledAutomaton::with_pair_table`].
    pairs: Option<PairTable>,
}

impl CompiledAutomaton {
    /// Flattens `reduced` into the compiled runtime representation.
    ///
    /// This is a pure layout transform: the compiled automaton is
    /// transition-for-transition identical to `reduced` (checked by the
    /// differential suites, and structurally by debug assertions here).
    pub fn compile(reduced: &ReducedAutomaton) -> CompiledAutomaton {
        let n = reduced.len();
        assert!(
            (n as u64) < (STATE_MASK as u64),
            "compiled automata cap at 2^31 - 2 states"
        );
        // Every stored target word carries the destination's accept bit.
        let tag = |t: StateId| -> u32 {
            t.0 | if reduced.output(t).is_empty() {
                0
            } else {
                OUTPUT_FLAG
            }
        };

        // Stored transitions → CSR, with dense escalation for wide rows.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut keys = Vec::new();
        let mut targets = Vec::new();
        let mut dense_of = vec![NO_DENSE; n];
        let mut dense: Vec<u32> = Vec::new();
        offsets.push(0u32);
        for s in reduced.state_ids() {
            let stored = reduced.stored(s);
            if stored.len() > DENSE_ROW_THRESHOLD {
                let row = dense.len();
                dense.resize(row + 256, DENSE_MISS);
                for &(b, t) in stored {
                    dense[row + b as usize] = tag(t);
                }
                dense_of[s.index()] = (row / 256) as u32;
            } else {
                debug_assert!(
                    stored.windows(2).all(|w| w[0].0 < w[1].0),
                    "stored rows must be byte-sorted"
                );
                for &(b, t) in stored {
                    keys.push(b);
                    targets.push(tag(t));
                }
            }
            offsets.push(keys.len() as u32);
        }

        // Default-transition table → interleaved sentinel-padded rows.
        // Strides come from the *configuration*, not the realized row
        // occupancy (which never exceeds it): a paper-config automaton
        // whose rows happen not to saturate still compiles to the (4, 1)
        // shape, so the stride-specialized steppers always apply to it —
        // padded slots cost one sentinel compare each.
        let source_lut = reduced.lut();
        let config = source_lut.config();
        let d2_stride = config.k2;
        let d3_stride = config.k3;
        debug_assert!(source_lut.iter().all(|(_, r)| r.depth2.len() <= d2_stride));
        debug_assert!(source_lut.iter().all(|(_, r)| r.depth3.len() <= d3_stride));
        let row_len = 1 + 2 * (d2_stride + d3_stride);
        let mut lut = vec![LUT_PAD; 256 * row_len];
        for (c, row) in source_lut.iter() {
            let base = c as usize * row_len;
            lut[base] = tag(row.depth1.unwrap_or(StateId::START));
            for (i, e) in row.depth2.iter().enumerate() {
                lut[base + 1 + 2 * i] = e.prev as u32;
                lut[base + 2 + 2 * i] = tag(e.target);
            }
            debug_assert!(
                {
                    let mut prevs: Vec<u8> = row.depth2.iter().map(|e| e.prev).collect();
                    prevs.sort_unstable();
                    prevs.windows(2).all(|w| w[0] != w[1])
                },
                "depth-2 compare keys must be distinct per row"
            );
            let d3_base = base + 1 + 2 * d2_stride;
            for (i, e) in row.depth3.iter().enumerate() {
                let [x, y] = e.prev2;
                lut[d3_base + 2 * i] = (x as u32) << 8 | y as u32;
                lut[d3_base + 1 + 2 * i] = tag(e.target);
            }
        }

        // Match outputs → CSR.
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_patterns = Vec::new();
        out_offsets.push(0u32);
        for s in reduced.state_ids() {
            out_patterns.extend_from_slice(reduced.output(s));
            out_offsets.push(out_patterns.len() as u32);
        }

        CompiledAutomaton {
            offsets,
            keys,
            targets,
            dense_of,
            has_dense: !dense.is_empty(),
            dense,
            lut,
            row_len,
            d2_stride,
            d3_stride,
            out_offsets,
            out_patterns,
            prefilter: None,
            pairs: None,
        }
    }

    /// [`CompiledAutomaton::compile`] plus the clean-traffic fast lane:
    /// embeds the anchor-byte analysis so matchers over this automaton
    /// run the SWAR skip lane by default (see [`AnchorSet`] and
    /// [`CompiledMatcher::with_prefilter`] for the A/B switch).
    ///
    /// `anchors` must be built from the same DFA `reduced` was reduced
    /// from — the lane's shallow-state bitset indexes this automaton's
    /// state ids.
    ///
    /// # Panics
    ///
    /// Panics if `anchors` was derived from an automaton with a
    /// different state count.
    pub fn compile_with_prefilter(
        reduced: &ReducedAutomaton,
        anchors: AnchorSet,
    ) -> CompiledAutomaton {
        assert_eq!(
            anchors.states(),
            reduced.len(),
            "anchor analysis belongs to a different automaton"
        );
        let mut compiled = Self::compile(reduced);
        compiled.prefilter = Some(anchors);
        compiled
    }

    /// The embedded anchor analysis, when compiled with the prefilter.
    pub fn prefilter(&self) -> Option<&AnchorSet> {
        self.prefilter.as_ref()
    }

    /// Attaches a stride-2 pair-transition layer: matchers over this
    /// automaton run the pair-stepping lane by default whenever the
    /// table holds at least one hot state (see [`PairTable`] and
    /// [`CompiledMatcher::with_pairs`] for the A/B switch). Composes
    /// with either compile entry point — with the prefilter, the skip
    /// lane hands off into the pair lane at every hard exit.
    ///
    /// `pairs` must be built from the same DFA this automaton was
    /// reduced from — pair words name this automaton's state ids.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` was derived from an automaton with a different
    /// state count.
    pub fn with_pair_table(mut self, pairs: PairTable) -> CompiledAutomaton {
        assert_eq!(
            pairs.states(),
            self.len(),
            "pair table belongs to a different automaton"
        );
        self.pairs = Some(pairs);
        self
    }

    /// The embedded pair-transition layer, when attached.
    pub fn pairs(&self) -> Option<&PairTable> {
        self.pairs.as_ref()
    }

    /// Number of states (identical to the source automaton's).
    pub fn len(&self) -> usize {
        self.dense_of.len()
    }

    /// `true` if only the start state exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Number of states compiled to dense 256-entry rows.
    pub fn dense_states(&self) -> usize {
        self.dense.len() / 256
    }

    /// Total stored transition pointers (CSR plus dense entries).
    pub fn stored_pointers(&self) -> usize {
        self.keys.len() + self.dense.iter().filter(|&&t| t != DENSE_MISS).count()
    }

    /// Approximate resident size of the compiled arrays in bytes —
    /// the flat-memory footprint the scan loop actually touches.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4
            + self.keys.len()
            + self.targets.len() * 4
            + self.dense_of.len() * 4
            + self.dense.len() * 4
            + self.lut.len() * 4
            + self.out_offsets.len() * 4
            + self.out_patterns.len() * 4
            + self.prefilter.as_ref().map_or(0, AnchorSet::memory_bytes)
            + self.pairs.as_ref().map_or(0, PairTable::memory_bytes)
    }

    /// Patterns recognized on entering `state`.
    #[inline]
    pub fn output(&self, state: u32) -> &[PatternId] {
        let lo = self.out_offsets[state as usize] as usize;
        let hi = self.out_offsets[state as usize + 1] as usize;
        &self.out_patterns[lo..hi]
    }

    /// Branch-free default-transition resolution, returning a **tagged**
    /// transition word (see [`OUTPUT_FLAG`]).
    ///
    /// `prev` is the previous input byte or [`HIST_NONE`]; `hist` is the
    /// packed pair `(prev2 << 8) | prev` of the previous two bytes (any
    /// invalid register makes the pack exceed 16 bits, so it cannot equal
    /// a stored depth-3 key — this *is* the paper's start-signal masking).
    /// Depth-2/3 compare keys are distinct within a row, so at most one
    /// slot per depth can hit; every slot is evaluated unconditionally and
    /// the hits are OR-combined (independent masked reductions rather than
    /// a serial select chain, mirroring the hardware's parallel
    /// comparators and keeping the dependency path short).
    #[inline(always)]
    pub fn resolve(&self, byte: u8, prev: u32, hist: u32) -> u32 {
        let base = byte as usize * self.row_len;
        let row = &self.lut[base..base + self.row_len];
        // Reverse-priority select chain: start from the depth-1 default,
        // let a depth-2 hit override it, then a depth-3 hit override
        // that. Keys are distinct per row, so at most one slot per depth
        // hits and evaluation order within a depth never matters.
        let mut t = row[0];
        let mut i = 1;
        for _ in 0..self.d2_stride {
            t = if row[i] == prev { row[i + 1] } else { t };
            i += 2;
        }
        for _ in 0..self.d3_stride {
            t = if row[i] == hist { row[i + 1] } else { t };
            i += 2;
        }
        t
    }

    /// [`CompiledAutomaton::resolve`] specialized to compile-time strides
    /// — the scan loops dispatch once per packet batch to the
    /// monomorphized copy matching the automaton (the paper's
    /// `k2 = 4, k3 = 1` in practice), so the compare sweep fully unrolls
    /// with no dynamic trip counts or bounds checks.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `(K2, K3)` equal the automaton's strides.
    #[inline(always)]
    pub fn resolve_k<const K2: usize, const K3: usize>(
        &self,
        byte: u8,
        prev: u32,
        hist: u32,
    ) -> u32 {
        debug_assert_eq!((self.d2_stride, self.d3_stride), (K2, K3));
        let row_len = 1 + 2 * (K2 + K3);
        let base = byte as usize * row_len;
        let row = &self.lut[base..base + row_len];
        let mut t = row[0];
        let mut i = 1;
        for _ in 0..K2 {
            t = if row[i] == prev { row[i + 1] } else { t };
            i += 2;
        }
        for _ in 0..K3 {
            t = if row[i] == hist { row[i + 1] } else { t };
            i += 2;
        }
        t
    }

    /// One transition step: stored pointers (CSR linear sweep or dense
    /// row) overriding the compiled default resolution. `state` is a
    /// plain index; the return is a **tagged** transition word (see
    /// [`OUTPUT_FLAG`]).
    ///
    /// The default resolution depends only on the *input* registers
    /// (`byte`, `prev`, `hist`), never on `state` — so it is computed
    /// unconditionally and overridden by a stored-pointer hit, rather
    /// than guarded behind the row scan. That keeps it off the
    /// byte-to-byte critical path (the serial dependency through `state`
    /// is just row-load → compare → select), which is where a software
    /// scan loop loses its cycle-per-byte — the same reason the hardware
    /// runs its LUT lookup in parallel with the state-memory read.
    #[inline(always)]
    pub fn step(&self, state: u32, byte: u8, prev: u32, hist: u32) -> u32 {
        let s = state as usize;
        if self.has_dense {
            let row = self.dense_of[s];
            if row != NO_DENSE {
                let t = self.dense[((row as usize) << 8) | byte as usize];
                if t != DENSE_MISS {
                    return t;
                }
                return self.resolve(byte, prev, hist);
            }
        }
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        for i in lo..hi {
            if self.keys[i] == byte {
                return self.targets[i];
            }
        }
        self.resolve(byte, prev, hist)
    }

    /// Software prefetch by early touch: pulls the cache lines the *next*
    /// step will need — the CSR row of the state just entered (`tagged`)
    /// and the LUT row of the next input byte — while the current
    /// iteration's bookkeeping still hides their latency.
    ///
    /// The scan loop's serial dependency is state → row load → compare →
    /// state; the hardware breaks it by reading state memory and the
    /// lookup table in parallel every cycle. In safe Rust (this crate
    /// forbids `unsafe`, so the `_mm_prefetch` intrinsic is out of reach)
    /// the closest analogue is issuing plain loads of both rows as soon
    /// as their addresses are known, forced to happen with
    /// [`std::hint::black_box`]. Whether the touch pays depends on the
    /// automaton's cache residency — which is why it sits behind
    /// [`CompiledMatcher::with_prefetch`] so benches can A/B it.
    #[inline(always)]
    pub fn touch_next(&self, tagged: u32, next_byte: u8) {
        let s = (tagged & STATE_MASK) as usize;
        let lo = self.offsets[s] as usize;
        std::hint::black_box(self.keys.get(lo).copied().unwrap_or(0));
        std::hint::black_box(self.lut[next_byte as usize * self.row_len]);
    }

    /// [`CompiledAutomaton::step`] with compile-time LUT strides; see
    /// [`CompiledAutomaton::resolve_k`].
    #[inline(always)]
    pub fn step_k<const K2: usize, const K3: usize>(
        &self,
        state: u32,
        byte: u8,
        prev: u32,
        hist: u32,
    ) -> u32 {
        let s = state as usize;
        if self.has_dense {
            let row = self.dense_of[s];
            if row != NO_DENSE {
                let t = self.dense[((row as usize) << 8) | byte as usize];
                if t != DENSE_MISS {
                    return t;
                }
                return self.resolve_k::<K2, K3>(byte, prev, hist);
            }
        }
        let lo = self.offsets[s] as usize;
        let hi = self.offsets[s + 1] as usize;
        for i in lo..hi {
            if self.keys[i] == byte {
                return self.targets[i];
            }
        }
        self.resolve_k::<K2, K3>(byte, prev, hist)
    }
}

/// One packet's scan registers: current state plus the two history bytes
/// (the Figure 5 engine registers, with [`HIST_NONE`] standing in for the
/// start signal's "register not yet valid").
#[derive(Debug, Clone, Copy)]
struct ScanRegs {
    state: u32,
    prev: u32,
    prev2: u32,
}

impl ScanRegs {
    #[inline(always)]
    fn start() -> ScanRegs {
        ScanRegs {
            state: StateId::START.0,
            prev: HIST_NONE,
            prev2: HIST_NONE,
        }
    }

    /// Loads the registers from a suspended [`ScanState`] — the
    /// `Option<u8>` history becomes the branch-free [`HIST_NONE`]
    /// encoding once per chunk, so the per-byte hot loop is identical to
    /// the payload-at-once one.
    #[inline(always)]
    fn from_state(state: &ScanState) -> ScanRegs {
        ScanRegs {
            state: state.state.0,
            prev: state.prev.map_or(HIST_NONE, u32::from),
            prev2: state.prev2.map_or(HIST_NONE, u32::from),
        }
    }

    /// Suspends the registers back into `state` after consuming
    /// `consumed` bytes. Stored history bytes are the *case-folded*
    /// stream bytes — the same convention the reference matchers keep,
    /// so a state is resumable across implementations.
    #[inline(always)]
    fn store(self, state: &mut ScanState, consumed: usize) {
        state.state = StateId(self.state);
        state.prev = (self.prev != HIST_NONE).then_some(self.prev as u8);
        state.prev2 = (self.prev2 != HIST_NONE).then_some(self.prev2 as u8);
        state.offset += consumed as u64;
    }

    /// Advances over one (already case-folded) byte, returning the
    /// **tagged** transition word: bits 0..31 the new state, bit 31 set
    /// iff the new state accepts (see [`OUTPUT_FLAG`]).
    #[inline(always)]
    fn advance(&mut self, automaton: &CompiledAutomaton, byte: u8) -> u32 {
        self.advance_with(automaton, byte, CompiledAutomaton::step)
    }

    /// [`ScanRegs::advance`] through a caller-chosen stepper (one of the
    /// monomorphized [`CompiledAutomaton::step_k`] copies, selected once
    /// per scan by [`dispatch_stepper!`]).
    #[inline(always)]
    fn advance_with(
        &mut self,
        automaton: &CompiledAutomaton,
        byte: u8,
        step: impl Fn(&CompiledAutomaton, u32, u8, u32, u32) -> u32,
    ) -> u32 {
        let hist = (self.prev2 << 8) | self.prev;
        let tagged = step(automaton, self.state, byte, self.prev, hist);
        self.state = tagged & STATE_MASK;
        self.prev2 = self.prev;
        self.prev = byte as u32;
        tagged
    }
}

/// Selects, once per scan, the stepper monomorphized for the automaton's
/// LUT strides and runs `$body` with it bound to `$step` (an inlineable
/// fn item, not a function pointer — each arm compiles its own copy of
/// the loop). Falls back to the stride-generic [`CompiledAutomaton::step`]
/// for unusual configurations.
macro_rules! dispatch_stepper {
    ($automaton:expr, $step:ident => $body:block) => {
        match ($automaton.d2_stride, $automaton.d3_stride) {
            // The paper's configuration (k2 = 4, k3 = 1) and the Figure 2
            // ablation shapes; anything else takes the generic path.
            (4, 1) => {
                #[inline(always)]
                fn $step(a: &CompiledAutomaton, s: u32, b: u8, p: u32, h: u32) -> u32 {
                    a.step_k::<4, 1>(s, b, p, h)
                }
                $body
            }
            (4, 0) => {
                #[inline(always)]
                fn $step(a: &CompiledAutomaton, s: u32, b: u8, p: u32, h: u32) -> u32 {
                    a.step_k::<4, 0>(s, b, p, h)
                }
                $body
            }
            (0, 0) => {
                #[inline(always)]
                fn $step(a: &CompiledAutomaton, s: u32, b: u8, p: u32, h: u32) -> u32 {
                    a.step_k::<0, 0>(s, b, p, h)
                }
                $body
            }
            _ => {
                #[inline(always)]
                fn $step(a: &CompiledAutomaton, s: u32, b: u8, p: u32, h: u32) -> u32 {
                    a.step(s, b, p, h)
                }
                $body
            }
        }
    };
}

/// Allocation-free scanner over a [`CompiledAutomaton`] — the production
/// software fast path.
///
/// # Examples
///
/// ```
/// use dpi_automaton::{Dfa, MultiMatcher, PatternSet};
/// use dpi_core::{CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton};
///
/// let set = PatternSet::new(["he", "she", "his", "hers"])?;
/// let dfa = Dfa::build(&set);
/// let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
/// let compiled = CompiledAutomaton::compile(&reduced);
/// let matcher = CompiledMatcher::new(&compiled, &set);
///
/// let mut matches = Vec::new(); // reused across packets — no per-scan allocation
/// matcher.scan_into(b"ushers", &mut matches);
/// assert_eq!(matches.len(), 3);
/// # Ok::<(), dpi_automaton::PatternSetError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledMatcher<'a> {
    automaton: &'a CompiledAutomaton,
    set: &'a PatternSet,
    /// Precompiled case-fold table (identity for case-sensitive sets) —
    /// one unconditional load per byte instead of a per-byte branch.
    fold: [u8; 256],
    /// Issue early touch loads for the next step's rows (see
    /// [`CompiledAutomaton::touch_next`]). Dispatched once per scan, so
    /// the hot loop carries no per-byte flag check.
    prefetch: bool,
    /// Run the anchor-byte skip lane when the automaton carries the
    /// tables (on by default; see [`CompiledMatcher::with_prefilter`]).
    prefilter: bool,
    /// Run the stride-2 pair-stepping lane when the automaton carries a
    /// non-empty pair table (on by default; see
    /// [`CompiledMatcher::with_pairs`]).
    pairs: bool,
    /// Detection witness for the SIMD window probes and the hot-row
    /// prefetch (`Some` on by default when the CPU qualifies; see
    /// [`CompiledMatcher::with_simd`]). Absent entirely in portable
    /// builds, so the safe lanes carry no flag check.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    simd: Option<SimdToken>,
}

impl<'a> CompiledMatcher<'a> {
    /// Creates a matcher borrowing the compiled automaton and pattern
    /// set. The clean-traffic skip lane is enabled whenever the automaton
    /// was compiled with
    /// [`CompiledAutomaton::compile_with_prefilter`].
    pub fn new(automaton: &'a CompiledAutomaton, set: &'a PatternSet) -> Self {
        let mut fold = [0u8; 256];
        for (b, slot) in fold.iter_mut().enumerate() {
            *slot = set.fold(b as u8);
        }
        CompiledMatcher {
            automaton,
            set,
            fold,
            prefetch: false,
            prefilter: automaton.prefilter().is_some(),
            pairs: automaton.pairs().is_some_and(|p| !p.is_empty()),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd: SimdToken::detect(),
        }
    }

    /// Shares one precomputed fold table instead of rebuilding it — used
    /// by the sharded scanner, which would otherwise pay 256 table writes
    /// per shard per packet on short-flow workloads.
    pub(crate) fn with_shared_fold(
        automaton: &'a CompiledAutomaton,
        set: &'a PatternSet,
        fold: [u8; 256],
        prefetch: bool,
        prefilter: bool,
        pairs: bool,
        simd: bool,
    ) -> Self {
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        let _ = simd;
        CompiledMatcher {
            automaton,
            set,
            fold,
            prefetch,
            prefilter: prefilter && automaton.prefilter().is_some(),
            pairs: pairs && automaton.pairs().is_some_and(|p| !p.is_empty()),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            simd: if simd { SimdToken::detect() } else { None },
        }
    }

    /// Enables or disables the next-row touch prefetch for subsequent
    /// scans (default off). Exists as a switch precisely so the benches
    /// can A/B it: the touch helps automata that miss cache and is dead
    /// weight on ones that fit. While enabled it takes precedence over
    /// the skip lane (the touch A/B needs the plain per-byte loop).
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch = enabled;
        self
    }

    /// Whether the next-row touch prefetch is enabled.
    pub fn prefetch(&self) -> bool {
        self.prefetch
    }

    /// Enables or disables the anchor-byte skip lane for subsequent
    /// scans — the A/B switch the clean-traffic benches measure.
    /// Defaults to on when the automaton carries the tables; enabling it
    /// on an automaton compiled without them is a no-op.
    pub fn with_prefilter(mut self, enabled: bool) -> Self {
        self.prefilter = enabled && self.automaton.prefilter().is_some();
        self
    }

    /// Whether the anchor-byte skip lane is active.
    pub fn prefilter(&self) -> bool {
        self.prefilter
    }

    /// Enables or disables the stride-2 pair-stepping lane for
    /// subsequent scans — the A/B switch the stride benches measure.
    /// Defaults to on when the automaton carries a non-empty
    /// [`PairTable`]; enabling it without one is a no-op.
    pub fn with_pairs(mut self, enabled: bool) -> Self {
        self.pairs = enabled && self.automaton.pairs().is_some_and(|p| !p.is_empty());
        self
    }

    /// Whether the stride-2 pair-stepping lane is active.
    pub fn pairs(&self) -> bool {
        self.pairs
    }

    /// Enables or disables the SIMD fast-lane kernels (16/32-byte
    /// shuffle window probes and the chained hot-row prefetch) for
    /// subsequent scans — the A/B switch mirroring
    /// [`CompiledMatcher::with_prefilter`]. On by default when the crate
    /// was built with the `simd` feature on x86_64 **and** the CPU
    /// supports SSSE3; everywhere else (portable builds, non-x86 CPUs)
    /// this is a no-op and the safe scalar lanes run — observable
    /// results are byte-identical either way (pinned by
    /// `tests/simd.rs`).
    pub fn with_simd(self, enabled: bool) -> Self {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            let mut m = self;
            m.simd = if enabled { SimdToken::detect() } else { None };
            m
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            let _ = enabled;
            self
        }
    }

    /// Whether the SIMD kernels are active (always `false` in portable
    /// builds and on CPUs without SSSE3).
    pub fn simd(&self) -> bool {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            self.simd.is_some()
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            false
        }
    }

    /// The compiled automaton this matcher scans over.
    pub fn automaton(&self) -> &'a CompiledAutomaton {
        self.automaton
    }

    /// The pattern set whose ids this matcher reports.
    pub fn set(&self) -> &'a PatternSet {
        self.set
    }

    /// The resumable scan core, monomorphized per prefetch mode so the
    /// off path carries zero overhead: advances `regs` over `chunk`,
    /// reporting match ends relative to `base` (the flow bytes consumed
    /// before this chunk). Every entry point — whole-payload and
    /// streaming — is a shell around this loop, so the stride-specialized
    /// stepper dispatch happens exactly once per chunk and the per-byte
    /// path is byte-for-byte the PR 1 hot loop.
    #[inline(always)]
    fn scan_chunk_impl_with<const PREFETCH: bool>(
        &self,
        regs: &mut ScanRegs,
        base: usize,
        chunk: &[u8],
        mut on_match: impl FnMut(usize, PatternId),
    ) {
        let a = self.automaton;
        dispatch_stepper!(a, step => {{
            for (i, &raw) in chunk.iter().enumerate() {
                let tagged = regs.advance_with(a, self.fold[raw as usize], step);
                if PREFETCH {
                    if let Some(&next) = chunk.get(i + 1) {
                        a.touch_next(tagged, self.fold[next as usize]);
                    }
                }
                if tagged & OUTPUT_FLAG != 0 {
                    for &p in a.output(tagged & STATE_MASK) {
                        on_match(base + i + 1, p);
                    }
                }
            }
        }});
    }

    /// Advances `regs` through the anchor-byte fast lane starting at
    /// byte `i0` of `chunk`, returning the first position the lane
    /// cannot consume (a danger byte whose step may leave the shallow
    /// region or accept) or `chunk.len()`.
    ///
    /// The lane maintains **no per-byte registers at all** — that is the
    /// whole speedup. Its soundness rests on two facts (pinned by
    /// `tests/prefilter.rs`):
    ///
    /// - every lane-consumed byte provably keeps the automaton in the
    ///   shallow region with nothing to report, so the state after any
    ///   prefix of the lane is implied by its last byte alone
    ///   ([`AnchorSet::depth1_state`], per the longest-suffix invariant);
    /// - the danger test for a byte needs only its immediate
    ///   predecessor, which sits *in the buffer* (or, at the lane entry
    ///   boundary, in the suspended `prev` register) — the DTP history
    ///   registers are dead at every skip point and are rebuilt exactly
    ///   from the buffer tail before the lane returns.
    ///
    /// Mechanics — the lane alternates two phases and self-tunes their
    /// mix to the traffic:
    ///
    /// - **SWAR window phase**: 8 bytes per iteration via one
    ///   little-endian `u64` window load, each byte's skip-classification
    ///   folded branch-free into a candidate mask
    ///   ([`AnchorSet::candidate_mask`]); fully-skippable windows advance
    ///   wholesale, and a marked window jumps (trailing zeros) to its
    ///   first candidate;
    /// - **danger-walk phase**: per-byte danger-table test with a
    ///   register-carried predecessor — the exact check, ~6 predictable
    ///   µops per byte.
    ///
    /// Which phase pays is a property of the *traffic*, not just the
    /// automaton: protocol text keeps candidate density high (windows
    /// are never clean — the probe is pure overhead), while binary
    /// payload regions against modest rulesets are nearly all skippable
    /// (windows consume 8 bytes for ~the cost the walk pays per 2).
    /// So the lane walks [`LANE_PROBE_MIN`] bytes after a failed window
    /// probe, doubling up to [`LANE_PROBE_MAX`] while probes keep
    /// failing, and drops straight back to window mode the moment one
    /// succeeds — window speed on skippable runs, walk speed under
    /// candidate saturation, probe cost amortized to noise in between
    /// (measured: the adaptive lane tracks the better pure shape within
    /// a few percent on clean, binary and chatter traffic at every
    /// ruleset size).
    ///
    /// The caller classifies the exit byte with [`AnchorSet::is_soft`]:
    /// a soft exit (shallow accept — single-byte patterns) is consumed
    /// caller-side and the lane re-entered; only hard exits wake the
    /// stepper.
    /// `run` is the lane's adaptation state, owned by the caller so it
    /// persists across lane re-entries within one chunk (soft exits and
    /// short stepper excursions would otherwise reset it every few
    /// bytes): `0` = window mode; otherwise the walk-run length before
    /// the next probe.
    ///
    /// With `PAIRS` (a [`PairTable`] with region rows riding along),
    /// the same phases consume two bytes per test where they can: the
    /// window criterion becomes four aligned calm-pair bits
    /// ([`CompiledMatcher::calm_lead`] — strictly more permissive than
    /// the skip bitmap), the walk consumes a non-danger byte's
    /// successor whenever the exact follow row allows
    /// ([`PairTable::is_follow_calm`], ~97 % biased), and a danger hit
    /// whose two-step outcome is universally calm
    /// ([`PairTable::is_calm`]) is consumed in-walk instead of
    /// exiting. Exit semantics, register rebuilding and the `run`
    /// contract are unchanged.
    ///
    /// With `SIMD` (a detection token rode in via
    /// [`CompiledMatcher::with_simd`]) and a profitable danger cover
    /// ([`AnchorSet::simd_danger`]), the call routes to
    /// [`CompiledMatcher::lane_advance_simd`]: the window/walk
    /// alternation is replaced by one nibble-box cover walk that tests
    /// 16/32 `(prev, byte)` danger keys per shuffle probe, consuming
    /// unflagged bytes on exactly the evidence the scalar walk's
    /// per-byte danger test would have used and settling flagged ones
    /// with the exact bitmap (PAIRS adds the same calm-pair rescue to
    /// true hits). Exit semantics and the register rebuild are shared,
    /// so the lanes differ only in how fast they consume provably-inert
    /// bytes (pinned by `tests/simd.rs`); rule sets whose cover is too
    /// dense to profit fall through to the scalar lane below.
    #[inline(always)]
    fn lane_advance<const PAIRS: bool, const SIMD: bool>(
        &self,
        pf: &AnchorSet,
        pt: Option<&PairTable>,
        regs: &mut ScanRegs,
        chunk: &[u8],
        i0: usize,
        run: &mut usize,
    ) -> usize {
        debug_assert!(pf.contains_state(regs.state), "lane entered off-region");
        if SIMD {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            {
                if pf.simd_danger().is_some() {
                    let tok = self.simd.expect("SIMD lane without token");
                    // The dispatch frame compiles the whole lane call
                    // with the detected features enabled, so the probe
                    // kernels inline and their shuffle tables load once
                    // per lane entry, not once per probe run.
                    return tok.dispatch(|| {
                        self.lane_advance_simd::<PAIRS>(pf, pt, regs, chunk, i0, run)
                    });
                }
                // No profitable cover for this rule set: the scalar
                // lane below is the fast path.
            }
        }
        let len = chunk.len();
        let entry_prev = regs.prev;
        let mut i = i0;
        let exit = 'lane: {
            loop {
                if *run == 0 {
                    // Window mode: consume provably-inert 8-byte
                    // windows; a marked window jumps to its first
                    // trouble spot and opens a short walk run. With the
                    // pair layer the window criterion is four aligned
                    // region-pair bits (strictly more permissive than
                    // the skip bitmap: calm pairs cover candidate bytes
                    // whose two-step outcome stays in the region, which
                    // on binary payload regions succeeds where all-8
                    // skippable windows almost never do); without it,
                    // the SWAR candidate mask.
                    if PAIRS {
                        let pt = pt.expect("PAIRS implies a table");
                        while *run == 0 && i + 8 <= len {
                            let lead = Self::calm_lead(pt, &chunk[i..i + 8]);
                            if lead < 4 {
                                i += 2 * lead;
                                *run = LANE_PROBE_MIN;
                                break;
                            }
                            i += 8;
                        }
                    } else {
                        while *run == 0 && i + 8 <= len {
                            let w = u64::from_le_bytes(
                                chunk[i..i + 8].try_into().expect("8-byte window"),
                            );
                            let m = pf.candidate_mask(w);
                            if m != 0 {
                                i += m.trailing_zeros() as usize;
                                *run = LANE_PROBE_MIN;
                                break;
                            }
                            i += 8;
                        }
                    }
                    if *run == 0 {
                        // No window left: walk the sub-window tail.
                        *run = 8;
                    }
                    if i >= len {
                        break 'lane len;
                    }
                }
                // Walk phase: exact per-byte danger tests for the next
                // `run` bytes. Raw buffer bytes and the suspended
                // (folded) entry register index the same danger rows —
                // fold is idempotent and baked into both axes.
                let stop = (i + *run).min(len);
                let mut prev = if i > i0 { chunk[i - 1] as u32 } else { entry_prev };
                if PAIRS {
                    // The walk itself is byte-for-byte the pairs-off
                    // walk (its danger branch is ~97 % biased, so it
                    // predicts well on any traffic — measured, a
                    // per-pair calm test on the common path loses its
                    // gains to mispredicts the moment the payload mixes
                    // entropies). The pair layer acts only on the rare
                    // danger hit: one calm bit decides whether the hit
                    // and its successor provably return to the region
                    // with nothing to report, in which case the walk
                    // continues two bytes later and the whole
                    // exit/rebuild/stepper-wake round trip (~17k/MiB on
                    // the infected repro workload, two thirds calm)
                    // never happens.
                    let pt = pt.expect("PAIRS implies a table");
                    while i < stop {
                        let c = chunk[i];
                        if pf.is_danger(prev, c) {
                            if i + 2 <= len && pt.is_calm(c, chunk[i + 1]) {
                                prev = chunk[i + 1] as u32;
                                i += 2;
                                continue;
                            }
                            break 'lane i;
                        }
                        // Non-danger byte: the follow row decides — at
                        // ~97 % bias — whether its successor rides
                        // along, so the common path consumes two bytes
                        // per iteration with the same two predictable
                        // branches the pairs-off walk pays per one.
                        if i + 2 <= len && pt.is_follow_calm(c, chunk[i + 1]) {
                            prev = chunk[i + 1] as u32;
                            i += 2;
                            continue;
                        }
                        prev = c as u32;
                        i += 1;
                    }
                } else {
                    while i < stop {
                        let c = chunk[i];
                        if pf.is_danger(prev, c) {
                            break 'lane i;
                        }
                        prev = c as u32;
                        i += 1;
                    }
                }
                if i >= len {
                    break 'lane len;
                }
                // Run completed without an exit: one probe decides —
                // clean window → back to window mode; dirty → keep
                // walking, twice as far before the next probe.
                if i + 8 <= len {
                    if PAIRS {
                        let pt = pt.expect("PAIRS implies a table");
                        let lead = Self::calm_lead(pt, &chunk[i..i + 8]);
                        if lead == 4 {
                            i += 8;
                            *run = 0;
                            continue;
                        }
                        i += 2 * lead;
                    } else {
                        let w = u64::from_le_bytes(
                            chunk[i..i + 8].try_into().expect("8-byte window"),
                        );
                        let m = pf.candidate_mask(w);
                        if m == 0 {
                            i += 8;
                            *run = 0;
                            continue;
                        }
                        i += m.trailing_zeros() as usize;
                    }
                }
                *run = (*run * 2).min(LANE_PROBE_MAX);
            }
        };
        self.rebuild_lane_regs(pf, regs, chunk, i0, exit, entry_prev);
        exit
    }

    /// The vector lane: [`CompiledMatcher::lane_advance`] with the
    /// window/walk alternation replaced by one
    /// [`SimdToken::danger_scan`] loop over the danger-relation nibble-
    /// box cover.
    ///
    /// Measurement forced this shape (see `crates/automaton/src/simd.rs`
    /// and the `sw-throughput-simd` repro rows): on the repro traffic
    /// *no* 8/16/32-byte window is fully skippable — the scalar lane's
    /// whole budget is the per-byte `danger[prev << 8 | c]` walk, so
    /// vectorizing window classification (the candidate membership mask,
    /// the pair-calm conjunction) measured at parity or worse. The cover
    /// probe vectorizes the walk itself: 16/32 danger tests per probe,
    /// where an unflagged byte is consumed on exactly the evidence the
    /// scalar walk would have used (the cover is one-sided: unflagged ⇒
    /// the `(prev, byte)` danger bit is clear), a flagged byte gets the
    /// exact bitmap probe, and only a *true* danger hit exits the lane —
    /// a false flag costs one load, never an exit/rebuild round trip.
    ///
    /// Composition with the surrounding machinery is unchanged from the
    /// scalar lane: the entry byte is settled with the exact bit against
    /// the *suspended register* (possibly [`HIST_NONE`] after a resume
    /// or a reassembly hole-skip reset — a key the cover does not
    /// carry), sub-width tails fall back to the scalar walk, the PAIRS
    /// variant applies the same calm-pair rescue to true hits, and the
    /// exit register rebuild is shared. When the rule set was too dense
    /// for a profitable cover ([`AnchorSet::simd_danger`] is `None`) the
    /// scalar lane runs unchanged.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline(always)]
    fn lane_advance_simd<const PAIRS: bool>(
        &self,
        pf: &AnchorSet,
        pt: Option<&PairTable>,
        regs: &mut ScanRegs,
        chunk: &[u8],
        i0: usize,
        run: &mut usize,
    ) -> usize {
        let Some(cover) = pf.simd_danger() else {
            return self.lane_advance::<PAIRS, false>(pf, pt, regs, chunk, i0, run);
        };
        let tok = self.simd.expect("SIMD lane without token");
        let width = tok.scan_width();
        let len = chunk.len();
        let entry_prev = regs.prev;
        let mut i = i0;
        let exit = 'lane: {
            // Entry byte: its predecessor is the suspended register
            // (fold-idempotent, possibly HIST_NONE) — settle exactly.
            if i < len {
                let c = chunk[i];
                if pf.is_danger(entry_prev, c) {
                    if PAIRS {
                        let pt = pt.expect("PAIRS implies a table");
                        if i + 2 <= len && pt.is_calm(c, chunk[i + 1]) {
                            i += 2;
                        } else {
                            break 'lane i;
                        }
                    } else {
                        break 'lane i;
                    }
                } else {
                    i += 1;
                }
            }
            // Vector walk: every probed byte's predecessor is in the
            // buffer (i ≥ 1 holds from here on).
            while i + width <= len {
                let (base, mut flags) = tok.danger_scan(cover, chunk, i);
                if flags == 0 {
                    // Clear through the tail window boundary.
                    i = base;
                    break;
                }
                // Where the walk resumes after this window's flags are
                // settled; a rescue whose pair straddles the window end
                // pushes it one byte further.
                let mut next = base + width;
                while flags != 0 {
                    let j = base + flags.trailing_zeros() as usize;
                    flags &= flags - 1;
                    if pf.is_danger(chunk[j - 1] as u32, chunk[j]) {
                        if PAIRS {
                            let pt = pt.expect("PAIRS implies a table");
                            if j + 2 <= len && pt.is_calm(chunk[j], chunk[j + 1]) {
                                // Calm-pair rescue: j+1 is consumed with
                                // j, so its flag (if any) is spent.
                                let spent = j + 1 - base;
                                if spent < width {
                                    flags &= !(1u32 << spent);
                                } else {
                                    // The pair straddles the window: the
                                    // scalar walk's `i += 2` lands past
                                    // `base + width`, so the next probe
                                    // must too — re-testing the consumed
                                    // second byte could exit the lane
                                    // *between* the pair's bytes, where
                                    // is_calm guarantees nothing and the
                                    // register rebuild would diverge.
                                    next = j + 2;
                                }
                                continue;
                            }
                        }
                        break 'lane j;
                    }
                }
                i = next;
            }
            // Scalar tail (and the no-cover walk for short chunks).
            let mut prev = if i > i0 { chunk[i - 1] as u32 } else { entry_prev };
            while i < len {
                let c = chunk[i];
                if pf.is_danger(prev, c) {
                    if PAIRS {
                        let pt = pt.expect("PAIRS implies a table");
                        if i + 2 <= len && pt.is_calm(c, chunk[i + 1]) {
                            prev = chunk[i + 1] as u32;
                            i += 2;
                            continue;
                        }
                    }
                    break 'lane i;
                }
                prev = c as u32;
                i += 1;
            }
            len
        };
        self.rebuild_lane_regs(pf, regs, chunk, i0, exit, entry_prev);
        exit
    }

    /// Rebuilds the registers the plain scan would hold after the lane
    /// consumed `chunk[i0..exit]`: history from the buffer tail
    /// (shifting in the suspended registers at the boundary), state
    /// from the history — for horizons ≤ 1 a depth-1 map lookup; for
    /// horizon 2 a two-byte replay from the start state under
    /// start-signal masking (the state may sit at depth 2, and the
    /// longest-suffix invariant says replaying the last two bytes
    /// reproduces any region state exactly; every replayed state is
    /// lane-cleared, so there is nothing to emit). Shared by
    /// [`CompiledMatcher::lane_advance`] and
    /// [`CompiledMatcher::window_advance`].
    #[inline(always)]
    fn rebuild_lane_regs(
        &self,
        pf: &AnchorSet,
        regs: &mut ScanRegs,
        chunk: &[u8],
        i0: usize,
        exit: usize,
        entry_prev: u32,
    ) {
        if exit > i0 {
            regs.prev2 = if exit - i0 >= 2 {
                self.fold[chunk[exit - 2] as usize] as u32
            } else {
                entry_prev
            };
            regs.prev = self.fold[chunk[exit - 1] as usize] as u32;
            regs.state = if pf.horizon() >= 2 {
                let mut s = StateId::START.0;
                let mut p = HIST_NONE;
                if regs.prev2 != HIST_NONE {
                    // hist pack exceeds 16 bits: depth-3 defaults masked.
                    s = self
                        .automaton
                        .step(s, regs.prev2 as u8, HIST_NONE, (HIST_NONE << 8) | HIST_NONE)
                        & STATE_MASK;
                    p = regs.prev2;
                }
                self.automaton
                    .step(s, regs.prev as u8, p, (HIST_NONE << 8) | p)
                    & STATE_MASK
            } else {
                pf.depth1_state(chunk[exit - 1])
            };
        }
    }

    /// The skip-lane variant of the resumable core: alternates between
    /// [`CompiledMatcher::lane_advance`] (state in the shallow region —
    /// the overwhelmingly common case on clean traffic) and the exact
    /// stride-specialized stepper (which re-enters the lane as soon as
    /// the state falls back into the region). Observable behaviour is
    /// byte-identical to the plain core.
    #[inline(always)]
    fn scan_chunk_prefilter<const SIMD: bool>(
        &self,
        pf: &AnchorSet,
        regs: &mut ScanRegs,
        base: usize,
        chunk: &[u8],
        mut on_match: impl FnMut(usize, PatternId),
    ) {
        let a = self.automaton;
        let len = chunk.len();
        let mut i = 0usize;
        let mut run = 0usize;
        dispatch_stepper!(a, step => {{
            'scan: while i < len {
                if pf.contains_state(regs.state) {
                    i = self.lane_advance::<false, SIMD>(pf, None, regs, chunk, i, &mut run);
                    if i >= len {
                        break 'scan;
                    }
                    // Soft exit: a shallow accept (single-byte pattern).
                    // Land on the depth-1 state, emit its outputs, and
                    // re-enter the lane — no stepper wake-up. `regs`
                    // were rebuilt by the lane, so `regs.prev` is the
                    // true predecessor of the exit byte.
                    let c = chunk[i];
                    if pf.is_soft(regs.prev, c) {
                        let landed = pf.depth1_state(c);
                        for &p in a.output(landed) {
                            on_match(base + i + 1, p);
                        }
                        regs.state = landed;
                        regs.prev2 = regs.prev;
                        regs.prev = self.fold[c as usize] as u32;
                        i += 1;
                        continue 'scan;
                    }
                }
                while i < len {
                    let tagged = regs.advance_with(a, self.fold[chunk[i] as usize], step);
                    i += 1;
                    if tagged & OUTPUT_FLAG != 0 {
                        for &p in a.output(tagged & STATE_MASK) {
                            on_match(base + i, p);
                        }
                    }
                    if pf.contains_state(regs.state) {
                        continue 'scan;
                    }
                }
            }
        }});
    }

    /// Number of leading calm-aligned pairs in an 8-byte window
    /// (0..=4): the stride-2 window probe. The four bit tests are
    /// independent loads (full ILP), folded into one mask so the
    /// window decision costs a single branch.
    #[inline(always)]
    fn calm_lead(pt: &PairTable, w: &[u8]) -> usize {
        let m = pt.is_calm(w[0], w[1]) as u32
            | (pt.is_calm(w[2], w[3]) as u32) << 1
            | (pt.is_calm(w[4], w[5]) as u32) << 2
            | (pt.is_calm(w[6], w[7]) as u32) << 3;
        (!m).trailing_zeros() as usize
    }

    /// The composed fast path — skip lane *plus* stride-2 pair lane —
    /// used whenever the automaton carries both an [`AnchorSet`] and a
    /// non-empty [`PairTable`]. Observable behaviour is byte-identical
    /// to the plain core; what changes is who consumes which bytes:
    ///
    /// - the **skip lane** runs exactly as in the pairs-off path
    ///   (SWAR windows over skippable runs, the danger walk over
    ///   candidate text), but with the stride-2 *calm resolution*
    ///   spliced into the walk: a danger hit loads one pair row and,
    ///   when both half-steps provably return to the region with
    ///   nothing to report, consumes the two bytes without leaving the
    ///   walk — no register rebuild, no stepper wake-up. Measured on
    ///   the infected repro workload those wake-ups (17 k/MiB, ~70
    ///   cycles of exit/re-entry churn each) dominate the prefiltered
    ///   scan's losses;
    /// - a **pair phase** catches the true exits: while the state is
    ///   hot, excursions below the shallow region consume two bytes
    ///   per chained pair load ([`PairTable::fin_hot`] keeps the
    ///   serial dependency at one load per pair), emitting
    ///   final-accepts directly and deferring interior accepts
    ///   (`MID_ACCEPT`, rare) to the byte stepper for exact interior
    ///   emission;
    /// - the **byte phase** (the stride-specialized `step_k` stepper)
    ///   covers cold states, interior accepts and the odd head/tail
    ///   byte, handing back to the lane or the pair phase as soon as
    ///   the state allows.
    ///
    /// History registers after a consumed pair are the pair's own
    /// folded bytes, so suspend/resume at odd stream offsets needs no
    /// alignment (pinned by `tests/streaming.rs`).
    #[inline(always)]
    fn scan_chunk_pair_lane<const CALM: bool, const SIMD: bool>(
        &self,
        pf: &AnchorSet,
        pt: &PairTable,
        regs: &mut ScanRegs,
        base: usize,
        chunk: &[u8],
        mut on_match: impl FnMut(usize, PatternId),
    ) {
        let a = self.automaton;
        let len = chunk.len();
        let mut i = 0usize;
        let mut run = 0usize;
        dispatch_stepper!(a, step => {{
            'scan: while i < len {
                if pf.contains_state(regs.state) {
                    i = self.lane_advance::<CALM, SIMD>(pf, Some(pt), regs, chunk, i, &mut run);
                    if i >= len {
                        break 'scan;
                    }
                    // Soft exit: a shallow accept (single-byte pattern),
                    // emitted in-lane exactly as in the pairs-off path.
                    let c = chunk[i];
                    if pf.is_soft(regs.prev, c) {
                        let landed = pf.depth1_state(c);
                        for &p in a.output(landed) {
                            on_match(base + i + 1, p);
                        }
                        regs.state = landed;
                        regs.prev2 = regs.prev;
                        regs.prev = self.fold[c as usize] as u32;
                        i += 1;
                        continue 'scan;
                    }
                }
                // Pair phase: excursion stepping, two bytes per chained
                // load while hot; back to the lane the moment the state
                // re-enters the region.
                let mut hot = pt.hot_index(regs.state);
                while hot != PairTable::NO_HOT && i + 2 <= len {
                    let w = pt.word(hot, chunk[i], chunk[i + 1]);
                    if SIMD {
                        // The walk's serial dependency is this word's
                        // chained row index; hint the next pair's word
                        // the moment it arrives so its load overlaps
                        // the accept checks below. (`fin_hot` may be
                        // NO_HOT — the hint indexes out of range and
                        // lapses; the walk exits on that pair anyway.)
                        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                        if i + 4 <= len {
                            let tok = self.simd.expect("SIMD lane without token");
                            pt.prefetch_word(
                                tok,
                                PairTable::fin_hot(w),
                                chunk[i + 2],
                                chunk[i + 3],
                            );
                        }
                    }
                    if w & PairTable::MID_ACCEPT != 0 {
                        break;
                    }
                    regs.prev2 = self.fold[chunk[i] as usize] as u32;
                    regs.prev = self.fold[chunk[i + 1] as usize] as u32;
                    regs.state = w & PairTable::TARGET_MASK;
                    i += 2;
                    if w & OUTPUT_FLAG != 0 {
                        for &p in a.output(regs.state) {
                            on_match(base + i, p);
                        }
                    }
                    if pf.contains_state(regs.state) {
                        continue 'scan;
                    }
                    hot = PairTable::fin_hot(w);
                }
                // Byte phase: cold states, interior accepts, odd tail.
                while i < len {
                    let tagged = regs.advance_with(a, self.fold[chunk[i] as usize], step);
                    i += 1;
                    if tagged & OUTPUT_FLAG != 0 {
                        for &p in a.output(tagged & STATE_MASK) {
                            on_match(base + i, p);
                        }
                    }
                    if pf.contains_state(regs.state) {
                        continue 'scan;
                    }
                    if i + 2 <= len && pt.contains_state(regs.state) {
                        continue 'scan;
                    }
                }
            }
        }});
    }

    /// The pairs-only resumable core (pair table without the anchor
    /// lane, or the prefilter switched off): a stride-2 walk of the
    /// automaton itself. Every hot state consumes two bytes per chained
    /// pair load; cold states, interior accepts and the odd tail byte
    /// take the stride-specialized byte stepper. This is the raw
    /// software rendering of the multi-byte-per-cycle engines the paper
    /// scales with — no traffic assumption at all, just a shorter
    /// serial dependency chain per byte.
    #[inline(always)]
    fn scan_chunk_pairs<const SIMD: bool>(
        &self,
        pt: &PairTable,
        regs: &mut ScanRegs,
        base: usize,
        chunk: &[u8],
        mut on_match: impl FnMut(usize, PatternId),
    ) {
        let a = self.automaton;
        let len = chunk.len();
        let mut i = 0usize;
        dispatch_stepper!(a, step => {{
            'scan: while i < len {
                let mut hot = pt.hot_index(regs.state);
                while hot != PairTable::NO_HOT && i + 2 <= len {
                    let w = pt.word(hot, chunk[i], chunk[i + 1]);
                    if SIMD {
                        // The walk's serial dependency is this word's
                        // chained row index; hint the next pair's word
                        // the moment it arrives so its load overlaps
                        // the accept checks below. (`fin_hot` may be
                        // NO_HOT — the hint indexes out of range and
                        // lapses; the walk exits on that pair anyway.)
                        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                        if i + 4 <= len {
                            let tok = self.simd.expect("SIMD lane without token");
                            pt.prefetch_word(
                                tok,
                                PairTable::fin_hot(w),
                                chunk[i + 2],
                                chunk[i + 3],
                            );
                        }
                    }
                    if w & PairTable::MID_ACCEPT != 0 {
                        break;
                    }
                    regs.prev2 = self.fold[chunk[i] as usize] as u32;
                    regs.prev = self.fold[chunk[i + 1] as usize] as u32;
                    regs.state = w & PairTable::TARGET_MASK;
                    i += 2;
                    if w & OUTPUT_FLAG != 0 {
                        for &p in a.output(regs.state) {
                            on_match(base + i, p);
                        }
                    }
                    hot = PairTable::fin_hot(w);
                }
                if i >= len {
                    break 'scan;
                }
                let tagged = regs.advance_with(a, self.fold[chunk[i] as usize], step);
                i += 1;
                if tagged & OUTPUT_FLAG != 0 {
                    for &p in a.output(tagged & STATE_MASK) {
                        on_match(base + i, p);
                    }
                }
            }
        }});
    }

    /// One branch on the prefetch/prefilter/pairs switches, then into
    /// the matching monomorphized resumable core. Prefetch takes
    /// precedence (its A/B needs the plain loop); the skip lane is the
    /// default whenever the automaton carries anchor tables, with the
    /// pair lane composed in whenever a pair table rides along.
    #[inline(always)]
    fn scan_chunk_impl(
        &self,
        regs: &mut ScanRegs,
        base: usize,
        chunk: &[u8],
        on_match: impl FnMut(usize, PatternId),
    ) {
        let simd = self.simd();
        if self.prefetch {
            self.scan_chunk_impl_with::<true>(regs, base, chunk, on_match);
        } else if self.prefilter {
            let pf = self
                .automaton
                .prefilter()
                .expect("prefilter flag implies tables");
            if self.pairs {
                let pt = self.automaton.pairs().expect("pairs flag implies table");
                match (pt.has_region_rows(), simd) {
                    (true, true) => {
                        self.scan_chunk_pair_lane::<true, true>(pf, pt, regs, base, chunk, on_match)
                    }
                    (true, false) => self
                        .scan_chunk_pair_lane::<true, false>(pf, pt, regs, base, chunk, on_match),
                    (false, true) => self
                        .scan_chunk_pair_lane::<false, true>(pf, pt, regs, base, chunk, on_match),
                    (false, false) => self
                        .scan_chunk_pair_lane::<false, false>(pf, pt, regs, base, chunk, on_match),
                }
            } else if simd {
                self.scan_chunk_prefilter::<true>(pf, regs, base, chunk, on_match);
            } else {
                self.scan_chunk_prefilter::<false>(pf, regs, base, chunk, on_match);
            }
        } else if self.pairs {
            let pt = self.automaton.pairs().expect("pairs flag implies table");
            if simd {
                self.scan_chunk_pairs::<true>(pt, regs, base, chunk, on_match);
            } else {
                self.scan_chunk_pairs::<false>(pt, regs, base, chunk, on_match);
            }
        } else {
            self.scan_chunk_impl_with::<false>(regs, base, chunk, on_match);
        }
    }

    /// Whole-payload scan: a fresh flow consumed in one chunk.
    #[inline(always)]
    fn scan_impl(&self, packet: &[u8], on_match: impl FnMut(usize, PatternId)) {
        let mut regs = ScanRegs::start();
        self.scan_chunk_impl(&mut regs, 0, packet, on_match);
    }

    /// Resumable scan: consumes `chunk` from `state`, **appending** every
    /// occurrence to `out` with stream-absolute `end` offsets, and leaves
    /// `state` suspended ready for the flow's next chunk. Splitting a
    /// payload at arbitrary boundaries and feeding the chunks in order
    /// produces exactly the matches of [`CompiledMatcher::scan_into`] on
    /// the whole payload — including occurrences and DTP history spanning
    /// the boundaries (pinned by `tests/streaming.rs`).
    ///
    /// # Examples
    ///
    /// ```
    /// use dpi_automaton::{Dfa, PatternSet, ScanState};
    /// use dpi_core::{CompiledAutomaton, CompiledMatcher, DtpConfig, ReducedAutomaton};
    ///
    /// let set = PatternSet::new(["hers"])?;
    /// let reduced = ReducedAutomaton::reduce(&Dfa::build(&set), DtpConfig::PAPER);
    /// let compiled = CompiledAutomaton::compile(&reduced);
    /// let matcher = CompiledMatcher::new(&compiled, &set);
    ///
    /// // "hers" split mid-pattern across two segments.
    /// let mut flow = ScanState::fresh();
    /// let mut matches = Vec::new();
    /// matcher.scan_chunk_into(&mut flow, b"usahe", &mut matches);
    /// matcher.scan_chunk_into(&mut flow, b"rs", &mut matches);
    /// assert_eq!(matches.len(), 1);
    /// assert_eq!(matches[0].end, 7); // stream-absolute
    /// # Ok::<(), dpi_automaton::PatternSetError>(())
    /// ```
    pub fn scan_chunk_into(&self, state: &mut ScanState, chunk: &[u8], out: &mut Vec<Match>) {
        self.for_each_match_chunk(state, chunk, |m| out.push(m));
    }

    /// [`CompiledMatcher::scan_chunk_into`] in visitor form: zero
    /// buffering for pipelines that stream matches out as flows advance.
    pub fn for_each_match_chunk(
        &self,
        state: &mut ScanState,
        chunk: &[u8],
        mut visitor: impl FnMut(Match),
    ) {
        let mut regs = ScanRegs::from_state(state);
        let base = state.offset as usize;
        self.scan_chunk_impl(&mut regs, base, chunk, |end, pattern| {
            visitor(Match { end, pattern })
        });
        regs.store(state, chunk.len());
    }

    /// Scans `packet`, appending every occurrence to `out` in canonical
    /// `(end, pattern)` order. `out` is cleared first; reusing one buffer
    /// across packets makes the scan path allocation-free.
    pub fn scan_into(&self, packet: &[u8], out: &mut Vec<Match>) {
        out.clear();
        self.scan_impl(packet, |end, pattern| out.push(Match { end, pattern }));
    }

    /// Scans `packet`, invoking `visitor` for every occurrence in
    /// canonical order — zero buffering, for pipelines that stream
    /// matches (alert sinks, counters, samplers).
    pub fn for_each_match(&self, packet: &[u8], mut visitor: impl FnMut(Match)) {
        self.scan_impl(packet, |end, pattern| visitor(Match { end, pattern }));
    }

    /// Number of occurrences in `packet` without materializing them.
    pub fn count(&self, packet: &[u8]) -> usize {
        let mut total = 0usize;
        self.scan_impl(packet, |_, _| total += 1);
        total
    }

    /// Scans one packet, returning matches and the per-byte state trace —
    /// the differential-test entry point mirroring
    /// [`DtpMatcher::scan_with_trace`](crate::DtpMatcher::scan_with_trace).
    pub fn scan_with_trace(&self, packet: &[u8]) -> (Vec<Match>, Vec<StateId>) {
        let mut matches = Vec::new();
        let mut trace = Vec::with_capacity(packet.len());
        let a = self.automaton;
        let mut regs = ScanRegs::start();
        for (i, &raw) in packet.iter().enumerate() {
            let tagged = regs.advance(a, self.fold[raw as usize]);
            let s = tagged & STATE_MASK;
            trace.push(StateId(s));
            for &p in a.output(s) {
                matches.push(Match {
                    end: i + 1,
                    pattern: p,
                });
            }
        }
        (matches, trace)
    }
}

impl MultiMatcher for CompiledMatcher<'_> {
    fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.scan_into(haystack, &mut out);
        out
    }

    fn find_all_into(&self, haystack: &[u8], out: &mut Vec<Match>) {
        self.scan_into(haystack, out);
    }

    /// Early-exit fast path: stops at the first accepting state. Runs
    /// the anchor-byte skip lane when enabled — the lane can consume no
    /// accepting byte, so skipping never misses the exit — dispatching
    /// to the vector lane on the same [`CompiledMatcher::simd`] switch
    /// the full scans honour.
    fn is_match(&self, haystack: &[u8]) -> bool {
        let a = self.automaton;
        let simd = self.simd();
        dispatch_stepper!(a, step => {{
            let mut regs = ScanRegs::start();
            if self.prefilter && !self.prefetch {
                let pf = a.prefilter().expect("prefilter flag implies tables");
                let len = haystack.len();
                let mut i = 0usize;
                let mut run = 0usize;
                while i < len {
                    if pf.contains_state(regs.state) {
                        i = if simd {
                            self.lane_advance::<false, true>(pf, None, &mut regs, haystack, i, &mut run)
                        } else {
                            self.lane_advance::<false, false>(pf, None, &mut regs, haystack, i, &mut run)
                        };
                        if i >= len {
                            return false;
                        }
                        if pf.is_soft(regs.prev, haystack[i]) {
                            return true; // soft exit = an accepting state
                        }
                    }
                    while i < len {
                        let tagged =
                            regs.advance_with(a, self.fold[haystack[i] as usize], step);
                        i += 1;
                        if tagged & OUTPUT_FLAG != 0 {
                            return true;
                        }
                        if pf.contains_state(regs.state) {
                            break;
                        }
                    }
                }
                return false;
            }
            for &raw in haystack {
                if regs.advance_with(a, self.fold[raw as usize], step) & OUTPUT_FLAG != 0 {
                    return true;
                }
            }
            false
        }})
    }
}

/// Round-robin multi-packet scanner: the software mirror of the paper's
/// parallel engines.
///
/// One packet's scan is a serial dependent chain (each step's memory read
/// depends on the previous state). A hardware engine hides that latency
/// by clocking several engines 120° out of phase on one memory port; the
/// software analogue interleaves `lanes` packets through independent
/// scan registers in one loop, giving the out-of-order core `lanes`
/// independent chains per iteration.
///
/// **Measured caveat:** unlike the hardware's per-engine memory ports,
/// software lanes contend for one cache hierarchy. On automata that fit
/// in cache the interleave roughly breaks even with sequential
/// [`CompiledMatcher::scan_into`]; on large automata the competing state
/// walks thrash the cache and sequential scanning wins (see the
/// `sw-throughput` repro experiment). Prefer the sequential matcher
/// unless measurement on the deployment ruleset says otherwise — the
/// type exists as the faithful software rendering of the paper's engine
/// scheduling, and as the substrate for future latency-hiding work
/// (prefetch distance, per-lane automaton shards).
///
/// Per-packet results are **identical** to scanning each packet alone
/// (asserted by the differential suites): lanes share nothing but the
/// read-only automaton.
#[derive(Debug, Clone)]
pub struct BatchScanner<'a> {
    matcher: CompiledMatcher<'a>,
    lanes: usize,
}

impl<'a> BatchScanner<'a> {
    /// Creates a scanner interleaving `lanes` packets at a time.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(automaton: &'a CompiledAutomaton, set: &'a PatternSet, lanes: usize) -> Self {
        assert!(lanes > 0, "lanes must be non-zero");
        BatchScanner {
            matcher: CompiledMatcher::new(automaton, set),
            lanes,
        }
    }

    /// Number of packets interleaved per round.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The underlying single-packet matcher.
    pub fn matcher(&self) -> &CompiledMatcher<'a> {
        &self.matcher
    }

    /// Scans every packet, returning one canonical match vector per
    /// packet (index-aligned with `packets`).
    pub fn scan_batch<P: AsRef<[u8]>>(&self, packets: &[P]) -> Vec<Vec<Match>> {
        let mut out: Vec<Vec<Match>> = Vec::new();
        self.scan_batch_into(packets, &mut out);
        out
    }

    /// Allocation-reusing form of [`BatchScanner::scan_batch`]: `out` is
    /// resized to `packets.len()` and every inner buffer is cleared and
    /// refilled, so steady-state scanning performs no allocation.
    pub fn scan_batch_into<P: AsRef<[u8]>>(&self, packets: &[P], out: &mut Vec<Vec<Match>>) {
        // Grow with fresh buffers; shrinking drops the surplus ones (the
        // kept buffers retain their capacity, so fixed-size batch loops
        // stay allocation-free after warm-up).
        out.resize_with(packets.len(), Vec::new);
        for buf in out.iter_mut() {
            buf.clear();
        }
        let a = self.matcher.automaton;
        let fold = &self.matcher.fold;
        // Lane scratch reused across chunks (no per-chunk allocation).
        let mut slices: Vec<&[u8]> = Vec::with_capacity(self.lanes);
        let mut regs: Vec<ScanRegs> = Vec::with_capacity(self.lanes);
        let mut active: Vec<usize> = Vec::with_capacity(self.lanes);
        for (chunk_index, chunk) in packets.chunks(self.lanes).enumerate() {
            let base = chunk_index * self.lanes;
            slices.clear();
            slices.extend(chunk.iter().map(|p| p.as_ref()));
            regs.clear();
            regs.resize(chunk.len(), ScanRegs::start());
            // Round-robin in runs: each run advances every still-active
            // lane in lockstep up to the shortest remaining packet, so the
            // per-byte inner loop carries no length checks; exhausted
            // lanes drop out between runs.
            active.clear();
            active.extend((0..chunk.len()).filter(|&k| !slices[k].is_empty()));
            let mut pos = 0usize;
            while !active.is_empty() {
                let run_end = active
                    .iter()
                    .map(|&k| slices[k].len())
                    .min()
                    .expect("active is non-empty");
                dispatch_stepper!(a, step => {{
                    for i in pos..run_end {
                        for &k in &active {
                            let tagged =
                                regs[k].advance_with(a, fold[slices[k][i] as usize], step);
                            if tagged & OUTPUT_FLAG != 0 {
                                for &p in a.output(tagged & STATE_MASK) {
                                    out[base + k].push(Match {
                                        end: i + 1,
                                        pattern: p,
                                    });
                                }
                            }
                        }
                    }
                }});
                pos = run_end;
                active.retain(|&k| slices[k].len() > pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup_table::DtpConfig;
    use crate::matcher::DtpMatcher;
    use dpi_automaton::Dfa;

    fn build(patterns: &[&str], config: DtpConfig) -> (PatternSet, ReducedAutomaton) {
        let set = PatternSet::new(patterns).unwrap();
        let dfa = Dfa::build(&set);
        (set, ReducedAutomaton::reduce(&dfa, config))
    }

    fn figure1() -> (PatternSet, ReducedAutomaton) {
        build(&["he", "she", "his", "hers"], DtpConfig::PAPER)
    }

    #[test]
    fn matches_figure1_text() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        assert_eq!(m.find_all(b"ushers").len(), 3);
        assert!(m.is_match(b"this"));
        assert!(!m.is_match(b"hx sx ex"));
        assert_eq!(m.count(b"ushers and she said his hers"), 8);
    }

    #[test]
    fn step_matches_reduced_step_under_every_config() {
        // Exhaustive (state, byte, observed-history) agreement between the
        // compiled step and the reference step, walking real inputs so the
        // histories exercised are exactly the reachable ones.
        let configs = [
            DtpConfig::PAPER,
            DtpConfig::D1,
            DtpConfig::D1_D2,
            DtpConfig::NONE,
            DtpConfig { depth1: true, k2: 16, k3: 4 },
        ];
        for config in configs {
            let (set, reduced) = build(&["he", "she", "his", "hers", "hex"], config);
            let compiled = CompiledAutomaton::compile(&reduced);
            let m = CompiledMatcher::new(&compiled, &set);
            let dtp = DtpMatcher::new(&reduced, &set);
            for text in [
                &b"ushers"[..],
                b"shishershehehehers",
                b"hhhhssss",
                b"xxhexxx",
                b"",
                b"h",
                b"he",
            ] {
                let (cm, ct) = m.scan_with_trace(text);
                let (rm, rt) = dtp.scan_with_trace(text);
                assert_eq!(ct, rt, "trace diverged under {config:?} on {text:?}");
                assert_eq!(cm, rm, "matches diverged under {config:?} on {text:?}");
            }
        }
    }

    #[test]
    fn none_config_compiles_dense_rows() {
        // Without defaults every non-start pointer is stored; hub states
        // exceed the threshold and must escalate to dense rows.
        let strings: Vec<String> = (b'a'..=b'z')
            .flat_map(|c| {
                (b'a'..=b'z').map(move |d| format!("{}{}q", c as char, d as char))
            })
            .collect();
        let set = PatternSet::new(&strings).unwrap();
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::NONE);
        assert!(reduced.max_pointers() > DENSE_ROW_THRESHOLD);
        let compiled = CompiledAutomaton::compile(&reduced);
        assert!(compiled.dense_states() > 0);
        assert_eq!(compiled.stored_pointers(), reduced.stored_pointers());
        // Dense path produces the same scan as the reference.
        let m = CompiledMatcher::new(&compiled, &set);
        let dtp = DtpMatcher::new(&reduced, &set);
        let text = b"aaqabqzzqzyqxxq";
        assert_eq!(m.find_all(text), dtp.find_all(text));
    }

    #[test]
    fn paper_config_stays_fully_sparse() {
        let (_, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        assert_eq!(compiled.dense_states(), 0);
        assert_eq!(compiled.stored_pointers(), reduced.stored_pointers());
    }

    #[test]
    fn start_masking_is_preserved() {
        // First byte may only use the depth-1 default: packet "e" must not
        // fire the depth-3 default for 'e' even though stale-looking
        // history values are impossible by construction (HIST_NONE).
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        assert!(m.find_all(b"e").is_empty());
        // Second byte may use depth-2 but not depth-3.
        let found = m.find_all(b"he");
        assert_eq!(found.len(), 1);
        assert_eq!(set.pattern(found[0].pattern), b"he");
    }

    #[test]
    fn resolve_is_branch_free_equivalent_over_full_domain() {
        // For every byte and every (prev, prev2) in the full domain
        // (including the not-yet-valid sentinel), compiled resolution must
        // equal the reference Option-ladder resolution.
        let (_, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let lut = reduced.lut();
        let domain: Vec<u32> = (0..=255u32).chain([HIST_NONE]).collect();
        for c in [b'e', b'h', b'r', b's', b'i', b'x', 0u8, 255u8] {
            for &prev in &domain {
                for &prev2 in &domain {
                    let want = lut.resolve(
                        c,
                        (prev != HIST_NONE).then_some(prev as u8),
                        (prev2 != HIST_NONE).then_some(prev2 as u8),
                    );
                    // The runtime never observes (prev2 valid, prev
                    // invalid); skip the unreachable quadrant where the
                    // reference semantics differ by construction.
                    if prev == HIST_NONE && prev2 != HIST_NONE {
                        continue;
                    }
                    let hist = (prev2 << 8) | prev;
                    let got = compiled.resolve(c, prev, hist) & STATE_MASK;
                    assert_eq!(
                        got, want.0,
                        "resolve diverged on c={c:#04x} prev={prev:#x} prev2={prev2:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_into_reuses_capacity() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        let mut buf = Vec::new();
        m.scan_into(b"ushers and she said his hers", &mut buf);
        assert_eq!(buf.len(), 8);
        let cap = buf.capacity();
        m.scan_into(b"ushers", &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), cap, "buffer must be reused, not replaced");
    }

    #[test]
    fn visitor_streams_in_canonical_order() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        let mut seen = Vec::new();
        m.for_each_match(b"ushers", |mtch| seen.push(mtch));
        assert_eq!(seen, m.find_all(b"ushers"));
    }

    #[test]
    fn prefetch_mode_is_scan_invisible() {
        // The touch loads must change nothing observable: matches, trace
        // and every fast path agree with the default matcher.
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let plain = CompiledMatcher::new(&compiled, &set);
        let touched = CompiledMatcher::new(&compiled, &set).with_prefetch(true);
        assert!(touched.prefetch());
        for text in [&b"ushers and she said his hers"[..], b"", b"h", b"xxhexxx"] {
            assert_eq!(plain.find_all(text), touched.find_all(text));
            assert_eq!(plain.count(text), touched.count(text));
            assert_eq!(plain.is_match(text), touched.is_match(text));
        }
    }

    #[test]
    fn chunked_scan_equals_whole_payload() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        let payload = b"ushers and she said his hers";
        let whole = m.find_all(payload);
        // Every split point, including 0 and len (empty chunks), plus a
        // 1-byte packetization.
        for cut in 0..=payload.len() {
            let mut state = ScanState::fresh();
            let mut got = Vec::new();
            m.scan_chunk_into(&mut state, &payload[..cut], &mut got);
            m.scan_chunk_into(&mut state, &payload[cut..], &mut got);
            assert_eq!(got, whole, "split at {cut} diverged");
            assert_eq!(state.offset, payload.len() as u64);
        }
        let mut state = ScanState::fresh();
        let mut got = Vec::new();
        for b in payload.chunks(1) {
            m.scan_chunk_into(&mut state, b, &mut got);
        }
        assert_eq!(got, whole, "1-byte packetization diverged");
    }

    fn figure1_prefiltered() -> (PatternSet, CompiledAutomaton) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = AnchorSet::build(&dfa, &set, AnchorSet::DEFAULT_HORIZON);
        (set, CompiledAutomaton::compile_with_prefilter(&reduced, anchors))
    }

    #[test]
    fn prefilter_enabled_by_default_and_switchable() {
        let (set, compiled) = figure1_prefiltered();
        assert!(compiled.prefilter().is_some());
        let m = CompiledMatcher::new(&compiled, &set);
        assert!(m.prefilter());
        assert!(!m.clone().with_prefilter(false).prefilter());
        // Without tables the switch is a no-op.
        let (set2, reduced) = figure1();
        let bare = CompiledAutomaton::compile(&reduced);
        assert!(!CompiledMatcher::new(&bare, &set2).with_prefilter(true).prefilter());
    }

    #[test]
    fn prefilter_is_scan_invisible() {
        let (set, compiled) = figure1_prefiltered();
        let on = CompiledMatcher::new(&compiled, &set);
        let off = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
        for text in [
            &b"ushers and she said his hers"[..],
            b"",
            b"h",
            b"zzzzzzzzzzzzzzzzherszzzzzzzz",
            b"hhhhhhhhhhhhhhhh",
            b"xxhexxx shishershe",
        ] {
            assert_eq!(on.find_all(text), off.find_all(text), "on {text:?}");
            assert_eq!(on.count(text), off.count(text));
            assert_eq!(on.is_match(text), off.is_match(text));
        }
    }

    #[test]
    fn prefilter_chunked_scan_equals_whole_payload() {
        // Splits inside a SWAR skip run must resume mid-skip: the state
        // suspends on START with the run-tail history bytes.
        let (set, compiled) = figure1_prefiltered();
        let m = CompiledMatcher::new(&compiled, &set);
        let payload = b"zzzzzzzzzzzzzzhers zzzzzzzzzzzz she";
        let whole = m.find_all(payload);
        assert_eq!(whole.len(), 4); // he + hers, then she + he
        for cut in 0..=payload.len() {
            let mut state = ScanState::fresh();
            let mut got = Vec::new();
            m.scan_chunk_into(&mut state, &payload[..cut], &mut got);
            m.scan_chunk_into(&mut state, &payload[cut..], &mut got);
            assert_eq!(got, whole, "split at {cut} diverged");
        }
    }

    #[test]
    fn prefilter_memory_accounted() {
        let (set, compiled) = figure1_prefiltered();
        let (_, reduced) = figure1();
        let bare = CompiledAutomaton::compile(&reduced);
        let anchors = compiled.prefilter().expect("tables present");
        assert_eq!(
            compiled.memory_bytes(),
            bare.memory_bytes() + anchors.memory_bytes()
        );
        let _ = set;
    }

    fn figure1_paired(horizon: u8, budget: usize) -> (PatternSet, CompiledAutomaton) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let anchors = AnchorSet::build(&dfa, &set, horizon);
        let pairs = PairTable::build_with_region(&dfa, &set, &anchors, budget);
        let compiled = CompiledAutomaton::compile_with_prefilter(&reduced, anchors)
            .with_pair_table(pairs);
        (set, compiled)
    }

    #[test]
    fn pairs_enabled_by_default_and_switchable() {
        let (set, compiled) = figure1_paired(1, PairTable::DEFAULT_BUDGET);
        assert!(compiled.pairs().is_some());
        let m = CompiledMatcher::new(&compiled, &set);
        assert!(m.pairs() && m.prefilter());
        assert!(!m.clone().with_pairs(false).pairs());
        // An empty pair table never enables the lane.
        let (set2, reduced) = figure1();
        let dfa = Dfa::build(&set2);
        let empty = PairTable::build(&dfa, &set2, 0);
        let bare = CompiledAutomaton::compile(&reduced).with_pair_table(empty);
        assert!(!CompiledMatcher::new(&bare, &set2).with_pairs(true).pairs());
    }

    #[test]
    fn pair_lane_is_scan_invisible_under_every_mode() {
        // All four switch combinations agree on matches, counts and
        // is_match, across horizons and budget shapes (region rows
        // only, hot rows only via prefilter-off, both).
        for horizon in 0..=2u8 {
            for budget in [
                PairTable::REGION_ROW_BYTES,
                PairTable::REGION_ROW_BYTES + 2 * PairTable::ROW_BYTES,
                PairTable::DEFAULT_BUDGET,
            ] {
                let (set, compiled) = figure1_paired(horizon, budget);
                let both = CompiledMatcher::new(&compiled, &set);
                let lane_only = CompiledMatcher::new(&compiled, &set).with_pairs(false);
                let pairs_only = CompiledMatcher::new(&compiled, &set).with_prefilter(false);
                let plain = CompiledMatcher::new(&compiled, &set)
                    .with_prefilter(false)
                    .with_pairs(false);
                for text in [
                    &b"ushers and she said his hers"[..],
                    b"",
                    b"h",
                    b"he",
                    b"zzzzzzzzzzzzzzzzherszzzzzzzz",
                    b"hhhhhhhhhhhhhhhh",
                    b"xxhexxx shishershe",
                    b"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzs",
                ] {
                    let want = plain.find_all(text);
                    for (name, m) in [
                        ("both", &both),
                        ("lane", &lane_only),
                        ("pairs", &pairs_only),
                    ] {
                        assert_eq!(
                            m.find_all(text),
                            want,
                            "{name} diverged (h{horizon}, budget {budget}) on {text:?}"
                        );
                        assert_eq!(m.count(text), want.len());
                        assert_eq!(m.is_match(text), !want.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn pair_lane_chunked_scan_equals_whole_payload() {
        // Every split point, including odd offsets and cuts inside the
        // stride-2 windows and mid-pair, across pair modes.
        let (set, compiled) = figure1_paired(1, PairTable::DEFAULT_BUDGET);
        for matcher in [
            CompiledMatcher::new(&compiled, &set),
            CompiledMatcher::new(&compiled, &set).with_prefilter(false),
        ] {
            let payload = b"zzzzzzzzzzzzzzhers zzzzzzzzzzzz she";
            let whole = matcher.find_all(payload);
            assert_eq!(whole.len(), 4);
            for cut in 0..=payload.len() {
                let mut state = ScanState::fresh();
                let mut got = Vec::new();
                matcher.scan_chunk_into(&mut state, &payload[..cut], &mut got);
                matcher.scan_chunk_into(&mut state, &payload[cut..], &mut got);
                assert_eq!(got, whole, "split at {cut} diverged");
                assert_eq!(state.offset, payload.len() as u64);
            }
        }
    }

    #[test]
    fn pair_table_memory_accounted() {
        let (set, compiled) = figure1_paired(1, PairTable::DEFAULT_BUDGET);
        let (_, reduced) = figure1();
        let dfa = Dfa::build(&set);
        let bare_anchors = AnchorSet::build(&dfa, &set, 1);
        let bare = CompiledAutomaton::compile_with_prefilter(&reduced, bare_anchors);
        let pairs = compiled.pairs().expect("table present");
        assert_eq!(
            compiled.memory_bytes(),
            bare.memory_bytes() + pairs.memory_bytes()
        );
    }

    #[test]
    fn mismatched_pair_table_is_rejected() {
        let (_, reduced) = figure1();
        let other = PatternSet::new(["completely", "different"]).unwrap();
        let other_dfa = Dfa::build(&other);
        let table = PairTable::build(&other_dfa, &other, PairTable::ROW_BYTES);
        let err = std::panic::catch_unwind(|| {
            CompiledAutomaton::compile(&reduced).with_pair_table(table)
        });
        assert!(err.is_err(), "foreign pair table must be rejected");
    }

    #[test]
    fn nocase_fold_table() {
        let set = PatternSet::new_nocase(["Attack"]).unwrap();
        let dfa = Dfa::build(&set);
        let reduced = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        assert!(m.is_match(b"ATTACK AT DAWN"));
        assert!(m.is_match(b"attack"));
        assert!(!m.is_match(b"attac"));
    }

    #[test]
    fn batch_equals_sequential_for_every_lane_count() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        let packets: Vec<&[u8]> = vec![
            b"ushers",
            b"",
            b"she said his",
            b"hhhh",
            b"x",
            b"hershey",
            b"shishershe",
        ];
        let want: Vec<Vec<Match>> = packets.iter().map(|p| m.find_all(p)).collect();
        for lanes in [1usize, 2, 3, 4, 8, 16, 19] {
            let scanner = BatchScanner::new(&compiled, &set, lanes);
            assert_eq!(
                scanner.scan_batch(&packets),
                want,
                "batch({lanes}) diverged from sequential"
            );
        }
    }

    #[test]
    fn batch_into_reuses_buffers() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let scanner = BatchScanner::new(&compiled, &set, 4);
        let packets: Vec<&[u8]> = vec![b"ushers", b"his hers", b"nothing at all"];
        let mut out = Vec::new();
        scanner.scan_batch_into(&packets, &mut out);
        assert_eq!(out.len(), 3);
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        scanner.scan_batch_into(&packets, &mut out);
        let caps_after: Vec<usize> = out.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "inner buffers must be reused");
        assert_eq!(out[0].len(), 3);
        assert!(out[2].is_empty());
    }

    #[test]
    fn memory_footprint_is_reported() {
        let (_, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        assert!(compiled.memory_bytes() > 0);
        // 10 states: offsets arrays dominate at this size; just sanity-band.
        assert!(compiled.memory_bytes() < 64 * 1024);
    }

    #[test]
    fn multi_matcher_trait_surface() {
        let (set, reduced) = figure1();
        let compiled = CompiledAutomaton::compile(&reduced);
        let m = CompiledMatcher::new(&compiled, &set);
        let mut buf = vec![Match {
            end: 0,
            pattern: PatternId(0),
        }];
        m.find_all_into(b"ushers", &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(m.find_all(b"ushers"), buf);
    }
}
