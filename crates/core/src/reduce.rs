//! Transition-pointer reduction: the memory-saving transform of §III.B.
//!
//! Given the full move-function DFA and a [`DefaultLut`], each state keeps
//! only the transition pointers that the default resolution would get
//! *wrong*. The omission rule is exact — a pointer `(s, c) → δ(s, c)` is
//! dropped **iff** resolving the defaults with state `s`'s own path suffix
//! as history yields precisely `δ(s, c)` — so the reduced automaton is
//! state-for-state equivalent to the DFA ([`ReducedAutomaton::verify_against`]
//! proves it exhaustively).

use crate::lookup_table::{DefaultLut, DtpConfig};
use dpi_automaton::{Dfa, PatternId, StateId};

/// A state's stored transitions after reduction, sorted by byte.
pub type StoredTransitions = Vec<(u8, StateId)>;

/// The DATE 2010 reduced automaton: sparse per-state pointers + shared
/// default-transition lookup table.
///
/// This is the software form of the data structure; `dpi-hw` packs it into
/// 324-bit memory words and `dpi-sim` executes it cycle-accurately.
#[derive(Debug, Clone)]
pub struct ReducedAutomaton {
    lut: DefaultLut,
    transitions: Vec<StoredTransitions>,
    output: Vec<Vec<PatternId>>,
    depth: Vec<u16>,
    states: usize,
}

impl ReducedAutomaton {
    /// Reduces `dfa` under `config`.
    ///
    /// Builds the lookup table by popularity and then walks every
    /// `(state, byte)` pair once, keeping only pointers the defaults cannot
    /// reproduce. Transitions to the start state are never stored (the
    /// depth-1 fall-through covers them, see DESIGN.md §5).
    pub fn reduce(dfa: &Dfa, config: DtpConfig) -> ReducedAutomaton {
        let lut = DefaultLut::build(dfa, config);
        Self::reduce_with_lut(dfa, lut)
    }

    /// Reduces `dfa` against a caller-supplied lookup table (used by the
    /// ablation benches to compare selection policies).
    pub fn reduce_with_lut(dfa: &Dfa, lut: DefaultLut) -> ReducedAutomaton {
        let n = dfa.len();
        let mut transitions: Vec<StoredTransitions> = Vec::with_capacity(n);
        for s in dfa.states() {
            let mut kept: StoredTransitions = Vec::new();
            for c in 0..=255u8 {
                let t = dfa.step(s, c);
                if t == StateId::START {
                    // Never stored; the depth-1 fall-through returns START
                    // whenever no depth-1 state for `c` exists, which is
                    // implied by δ(s, c) = START.
                    debug_assert_eq!(lut.resolve_for_state(dfa, s, c), StateId::START);
                    continue;
                }
                if lut.resolve_for_state(dfa, s, c) == t {
                    continue;
                }
                kept.push((c, t));
            }
            transitions.push(kept);
        }
        ReducedAutomaton {
            lut,
            transitions,
            output: dfa.states().map(|s| dfa.output(s).to_vec()).collect(),
            depth: dfa.states().map(|s| dfa.depth(s)).collect(),
            states: n,
        }
    }

    /// Number of states (identical to the source DFA's).
    pub fn len(&self) -> usize {
        self.states
    }

    /// `true` if only the start state exists.
    pub fn is_empty(&self) -> bool {
        self.states == 1
    }

    /// The shared lookup table.
    pub fn lut(&self) -> &DefaultLut {
        &self.lut
    }

    /// Stored transitions of `state`, sorted by byte.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn stored(&self, state: StateId) -> &[(u8, StateId)] {
        &self.transitions[state.index()]
    }

    /// Patterns recognized on entering `state`.
    pub fn output(&self, state: StateId) -> &[PatternId] {
        &self.output[state.index()]
    }

    /// Depth of `state`.
    pub fn depth(&self, state: StateId) -> u16 {
        self.depth[state.index()]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states as u32).map(StateId)
    }

    /// Total stored pointers across all states (the paper's compressed
    /// pointer count).
    pub fn stored_pointers(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Mean stored pointers per state — Table II's "Avg.Pointers".
    pub fn avg_pointers(&self) -> f64 {
        self.stored_pointers() as f64 / self.states as f64
    }

    /// Largest stored pointer count of any state. The paper's engines
    /// handle at most 13 ("adequate once the memory reduction techniques
    /// have been applied") — `dpi-hw` rejects automata exceeding it.
    pub fn max_pointers(&self) -> usize {
        self.transitions.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// One transition step using **runtime** history (`prev`, `prev2` as in
    /// [`DefaultLut::resolve`]): stored pointers first, then defaults.
    ///
    /// Rows are scanned linearly: the paper caps stored rows at 13
    /// pointers (and the averages are below 2.5), where a straight sweep
    /// over the byte-sorted pairs beats `binary_search_by_key`'s branchy
    /// halving. The compiled engine (`CompiledAutomaton`) flattens this
    /// further; this method stays as the readable reference the
    /// differential benches compare against.
    #[inline]
    pub fn step(&self, state: StateId, c: u8, prev: Option<u8>, prev2: Option<u8>) -> StateId {
        let stored = &self.transitions[state.index()];
        for &(b, t) in stored {
            if b == c {
                return t;
            }
        }
        self.lut.resolve(c, prev, prev2)
    }

    /// Exhaustively checks state-for-state equivalence with `dfa`: for every
    /// `(state, byte)` pair, the reduced step (fed the state's path suffix
    /// as history) must land on `δ(state, byte)`.
    ///
    /// Returns the first disagreement found, or `None` when equivalent.
    pub fn verify_against(&self, dfa: &Dfa) -> Option<ReductionMismatch> {
        if dfa.len() != self.states {
            return Some(ReductionMismatch {
                state: StateId::START,
                byte: 0,
                expected: StateId(dfa.len() as u32),
                got: StateId(self.states as u32),
            });
        }
        for s in dfa.states() {
            let (prev, prev2) = match dfa.depth(s) {
                0 => (None, None),
                1 => (dfa.last_byte(s), None),
                _ => {
                    let [a, b] = dfa.last_two_bytes(s).expect("depth >= 2");
                    (Some(b), Some(a))
                }
            };
            for c in 0..=255u8 {
                let expected = dfa.step(s, c);
                let got = self.step(s, c, prev, prev2);
                if got != expected {
                    return Some(ReductionMismatch {
                        state: s,
                        byte: c,
                        expected,
                        got,
                    });
                }
            }
        }
        None
    }
}

/// A disagreement between the reduced automaton and its source DFA
/// (never produced by a correct build; exposed for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionMismatch {
    /// State where the divergence occurs.
    pub state: StateId,
    /// Input byte.
    pub byte: u8,
    /// The DFA's transition target.
    pub expected: StateId,
    /// The reduced automaton's target.
    pub got: StateId,
}

impl std::fmt::Display for ReductionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reduction mismatch at {} on byte {:#04x}: expected {}, got {}",
            self.state, self.byte, self.expected, self.got
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpi_automaton::PatternSet;

    fn figure1() -> (PatternSet, Dfa) {
        let set = PatternSet::new(["he", "she", "his", "hers"]).unwrap();
        let dfa = Dfa::build(&set);
        (set, dfa)
    }

    #[test]
    fn figure2a_depth1_defaults() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::D1);
        // Paper Figure 2(A): 1.1 avg → 11 stored pointers (every transition
        // whose target is at depth ≥ 2: 6 into depth-2, 4 into depth-3 and
        // 1 into depth-4 states).
        assert_eq!(red.stored_pointers(), 11);
        assert!((red.avg_pointers() - 1.1).abs() < 1e-12);
        assert!(red.verify_against(&dfa).is_none());
    }

    #[test]
    fn figure2b_depth2_defaults() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::D1_D2);
        // Paper Figure 2(B): 0.5 avg → 5 stored pointers.
        assert_eq!(red.stored_pointers(), 5);
        assert!((red.avg_pointers() - 0.5).abs() < 1e-12);
        assert!(red.verify_against(&dfa).is_none());
    }

    #[test]
    fn figure2c_depth3_defaults() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        // Paper Figure 2(C): 0.1 avg → exactly 1 stored pointer, the
        // transition from "her" to "hers" (depth 4 is never defaulted).
        assert_eq!(red.stored_pointers(), 1);
        assert!((red.avg_pointers() - 0.1).abs() < 1e-12);
        let only: Vec<_> = red
            .state_ids()
            .flat_map(|s| red.stored(s).to_vec())
            .collect();
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].0, b's');
        assert_eq!(red.depth(only[0].1), 4);
        assert!(red.verify_against(&dfa).is_none());
    }

    #[test]
    fn none_config_stores_every_non_start_pointer() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::NONE);
        assert_eq!(red.stored_pointers(), 26);
        assert!(red.verify_against(&dfa).is_none());
    }

    #[test]
    fn start_state_stores_nothing_under_paper_config() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        assert!(red.stored(StateId::START).is_empty());
    }

    #[test]
    fn outputs_and_depths_carried_over() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        for s in dfa.states() {
            assert_eq!(red.output(s), dfa.output(s));
            assert_eq!(red.depth(s), dfa.depth(s));
        }
    }

    #[test]
    fn step_prefers_stored_pointer() {
        let (_, dfa) = figure1();
        let red = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER);
        // "her" reading 's' must take the stored pointer to "hers", not the
        // depth-3 default for 's' (which is "his").
        let h = dfa.step(StateId::START, b'h');
        let he = dfa.step(h, b'e');
        let her = dfa.step(he, b'r');
        let hers = red.step(her, b's', Some(b'r'), Some(b'e'));
        assert_eq!(dfa.depth(hers), 4);
    }

    #[test]
    fn reduction_never_worse_with_more_defaults() {
        let sets = [
            PatternSet::new(["abc", "bcd", "cde", "abd"]).unwrap(),
            PatternSet::new(["aaaa", "aaab", "abab", "bbbb"]).unwrap(),
            PatternSet::new(["virus", "worm", "trojan", "rootkit"]).unwrap(),
        ];
        for set in &sets {
            let dfa = Dfa::build(set);
            let none = ReducedAutomaton::reduce(&dfa, DtpConfig::NONE).stored_pointers();
            let d1 = ReducedAutomaton::reduce(&dfa, DtpConfig::D1).stored_pointers();
            let d12 = ReducedAutomaton::reduce(&dfa, DtpConfig::D1_D2).stored_pointers();
            let d123 = ReducedAutomaton::reduce(&dfa, DtpConfig::PAPER).stored_pointers();
            assert!(d1 <= none);
            assert!(d12 <= d1);
            assert!(d123 <= d12);
        }
    }

    #[test]
    fn equivalence_holds_for_every_config_on_assorted_sets() {
        let configs = [
            DtpConfig::NONE,
            DtpConfig::D1,
            DtpConfig::D1_D2,
            DtpConfig::PAPER,
            DtpConfig { depth1: true, k2: 1, k3: 2 },
            DtpConfig { depth1: true, k2: 16, k3: 4 },
            DtpConfig { depth1: false, k2: 4, k3: 1 },
        ];
        let sets = [
            PatternSet::new(["he", "she", "his", "hers"]).unwrap(),
            PatternSet::new(["a"]).unwrap(),
            PatternSet::new(["aa", "ab", "ba", "bb", "aab", "abb"]).unwrap(),
            PatternSet::new([&b"\x00\x01"[..], &b"\x01\x00"[..], &b"\x00\x00\x00"[..]]).unwrap(),
            PatternSet::new(["GET /", "POST /", "HTTP/1.1", "Host:"]).unwrap(),
        ];
        for set in &sets {
            let dfa = Dfa::build(set);
            for config in configs {
                let red = ReducedAutomaton::reduce(&dfa, config);
                assert_eq!(
                    red.verify_against(&dfa),
                    None,
                    "config {config:?} on {set:?}"
                );
            }
        }
    }

    #[test]
    fn mismatch_display_is_informative() {
        let m = ReductionMismatch {
            state: StateId(3),
            byte: 0x41,
            expected: StateId(5),
            got: StateId(0),
        };
        let s = m.to_string();
        assert!(s.contains("S3") && s.contains("0x41") && s.contains("S5"));
    }
}
