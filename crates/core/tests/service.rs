//! Fault-injection property suite for the service runtime.
//!
//! The robustness contract under test (ISSUE 9 acceptance criteria):
//! under any seeded `FaultPlan`,
//!
//! 1. every admitted byte is scanned at a declared fidelity tier or
//!    accounted lost to a *counted* fault — never silently dropped;
//! 2. degradation and shed events are exactly counted
//!    (`offered == admitted + shed`, resyncs match resumed flows,
//!    restarts match panics);
//! 3. a ruleset hot-swap mid-stream is in-band and match-equivalent to
//!    a cold build from the swap boundary;
//! 4. a panicked worker's flows resume with boundary-local loss only.
//!
//! Traffic here is hand-rolled (deterministic SplitMix64 filler with
//! planted occurrences) so every expectation is computable without the
//! service in the loop.

use std::sync::{Arc, OnceLock};

use dpi_automaton::{ApproxConfig, Match, PatternSet};
use dpi_core::service::{
    FaultKind, FaultPlan, FidelityTier, RulesetArena, Service, ServiceConfig, ServiceSim,
};
use dpi_core::{FlowKey, FlowMatch, ShardedConfig, TwoStageConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Fixture: a ruleset with real windowed families (so the two-stage and
// flag-only tiers behave differently from the exact tier), plus
// deterministic traffic.
// ---------------------------------------------------------------------------

fn pattern_strings() -> Vec<String> {
    (0..10)
        .flat_map(|i| {
            [
                format!("alpha-family-{i:02}-signature"),
                format!("beta-family-{i:02}-marker"),
            ]
        })
        .collect()
}

fn two_stage_config() -> TwoStageConfig {
    let mut exact = ShardedConfig::with_cores(2);
    exact.budget_bytes = 32 * 1024;
    TwoStageConfig {
        approx: ApproxConfig::with_budget(1),
        exact,
    }
}

fn shared_arena() -> Arc<RulesetArena> {
    static ARENA: OnceLock<Arc<RulesetArena>> = OnceLock::new();
    Arc::clone(ARENA.get_or_init(|| {
        let set = PatternSet::new(pattern_strings()).unwrap();
        Arc::new(RulesetArena::build(&set, &two_stage_config(), 1).unwrap())
    }))
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `len` bytes of pseudo-random filler with `plants` pattern strings
/// written at the given offsets. Random filler cannot complete a
/// 20+-byte structured pattern by accident.
fn flow_payload(seed: u64, len: usize, plants: &[(usize, &str)]) -> Vec<u8> {
    let mut rng = SplitMix(seed);
    let mut payload: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
    for &(at, pat) in plants {
        payload[at..at + pat.len()].copy_from_slice(pat.as_bytes());
    }
    payload
}

/// Splits `payload` into in-order `(seq, bytes)` segments of `seg` bytes.
fn segments(payload: &[u8], seg: usize) -> Vec<(u64, Vec<u8>)> {
    payload
        .chunks(seg)
        .enumerate()
        .map(|(i, c)| ((i * seg) as u64, c.to_vec()))
        .collect()
}

/// Reference scan: the arena's exact engine over the whole payload.
fn reference(arena: &RulesetArena, payload: &[u8]) -> Vec<Match> {
    let mut scratch = arena.exact().scratch();
    let mut out = Vec::new();
    arena.exact().scan_into(payload, &mut scratch, &mut out);
    out
}

/// Asserts `m` is a true occurrence within `payload` (stream-absolute
/// `end`).
fn assert_true_occurrence(patterns: &[String], payload: &[u8], m: &Match) {
    let pat = patterns[m.pattern.index()].as_bytes();
    let end = m.end;
    assert!(
        end >= pat.len() && end <= payload.len(),
        "match end {end} out of range for pattern of len {}",
        pat.len()
    );
    assert_eq!(
        &payload[end - pat.len()..end],
        pat,
        "reported match is not a true occurrence"
    );
}

fn by_flow(matches: &[FlowMatch], key: FlowKey) -> Vec<Match> {
    let mut v: Vec<Match> = matches
        .iter()
        .filter(|m| m.key == key)
        .map(|m| m.matched)
        .collect();
    v.sort_by_key(|m| (m.end, m.pattern.index()));
    v
}

// ---------------------------------------------------------------------------
// 1. No faults: the service is transparent.
// ---------------------------------------------------------------------------

#[test]
fn no_fault_run_is_match_equivalent_to_direct_scans() {
    let arena = shared_arena();
    let patterns = pattern_strings();
    let mut config = ServiceConfig::with_workers(3);
    config.queue_cap = 512;
    let mut sim = ServiceSim::new(Arc::clone(&arena), config).unwrap();

    // Six flows, varied lengths, planted occurrences including an
    // adjacent cross-family pair (stresses masked window replay).
    let flows: Vec<(FlowKey, Vec<u8>)> = (0..6u64)
        .map(|i| {
            let plants: Vec<(usize, &str)> = match i % 3 {
                0 => vec![(40, "alpha-family-03-signature")],
                1 => vec![
                    (10, "beta-family-07-marker"),
                    (31, "alpha-family-00-signature"),
                ],
                _ => vec![],
            };
            (
                FlowKey(0x5000 + i as u128),
                flow_payload(i, 400 + 37 * i as usize, &plants),
            )
        })
        .collect();

    // Round-robin interleave of every flow's segments.
    let segmented: Vec<Vec<(u64, Vec<u8>)>> =
        flows.iter().map(|(_, p)| segments(p, 97)).collect();
    let rounds = segmented.iter().map(Vec::len).max().unwrap();
    let mut time = 0u64;
    for r in 0..rounds {
        for (f, segs) in segmented.iter().enumerate() {
            if let Some((seq, bytes)) = segs.get(r) {
                time += 1;
                assert!(sim.offer(flows[f].0, *seq, bytes, time));
            }
        }
    }
    let report = sim.finish();

    let s = report.stats;
    assert_eq!(s.shed_packets, 0);
    assert_eq!(s.offered_bytes, s.admitted_bytes);
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);
    assert_eq!(s.workers.panics, 0);
    assert_eq!(s.workers.suspect_flags, 0);

    for (key, payload) in &flows {
        let expect = reference(&arena, payload);
        let got = by_flow(&report.matches, *key);
        assert_eq!(got, expect, "flow {key} diverged from the direct scan");
        for m in &got {
            assert_true_occurrence(&patterns, payload, m);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Queue-full shedding: whole flows, exact accounting, clean resume.
// ---------------------------------------------------------------------------

#[test]
fn queue_full_sheds_whole_flows_and_resumes_with_resync() {
    let arena = shared_arena();
    let patterns = pattern_strings();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 8;
    config.shed.resume_below = 2;
    let mut sim = ServiceSim::new(Arc::clone(&arena), config).unwrap();

    // Four flows x 10 segments, offered without draining: the queue
    // fills at 8 and every flow ends up shed.
    let flows: Vec<(FlowKey, Vec<u8>)> = (0..4u64)
        .map(|i| {
            (
                FlowKey(0x9000 + i as u128),
                flow_payload(100 + i, 970, &[(300, "alpha-family-05-signature")]),
            )
        })
        .collect();
    let segmented: Vec<Vec<(u64, Vec<u8>)>> =
        flows.iter().map(|(_, p)| segments(p, 97)).collect();
    let mut time = 0u64;
    for r in 0..8 {
        for (f, segs) in segmented.iter().enumerate() {
            time += 1;
            let (seq, bytes) = &segs[r];
            sim.offer(flows[f].0, *seq, bytes, time);
        }
    }
    let mid = sim.stats();
    assert!(mid.shed_packets > 0, "an undrained 8-deep queue must shed");
    assert!(mid.shed_flows > 0);
    assert_eq!(mid.offered_packets, mid.admitted_packets + mid.shed_packets);
    assert_eq!(mid.offered_bytes, mid.admitted_bytes + mid.shed_bytes);

    // Drain, then offer every flow's last two segments: pressure is
    // gone, so each shed flow resumes through a resync marker. Plant
    // the tail occurrence entirely inside the final segment.
    sim.pump();
    for (f, segs) in segmented.iter().enumerate() {
        for (r, (seq, bytes)) in segs.iter().enumerate().take(10).skip(8) {
            time += 1;
            let mut bytes = bytes.clone();
            if r == 9 {
                bytes[10..10 + 22].copy_from_slice(b"beta-family-02-marker!");
            }
            assert!(
                sim.offer(flows[f].0, *seq, &bytes, time),
                "calm queue must readmit"
            );
        }
        // Keep the queue calm so the next flow's resume check also
        // sees depth <= resume_below.
        sim.pump();
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.offered_packets, s.admitted_packets + s.shed_packets);
    assert_eq!(s.offered_bytes, s.admitted_bytes + s.shed_bytes);
    assert_eq!(s.scanned_bytes(), s.admitted_bytes, "no silent drops");
    assert_eq!(
        s.workers.resyncs, s.resumed_flows,
        "every resumed flow repositions exactly once"
    );
    assert_eq!(s.resumed_flows, 4);

    // The resumed tail is scanned correctly: the planted marker sits at
    // stream offset 883..904 in every flow.
    for (key, _) in &flows {
        let got = by_flow(&report.matches, *key);
        assert!(
            got.iter().any(|m| m.end == 904
                && patterns[m.pattern.index()] == "beta-family-02-marker"),
            "post-resume occurrence missing for {key}: {got:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Degradation ladder: descends under pressure, recovers when calm,
//    with exact event counts and per-tier byte attribution.
// ---------------------------------------------------------------------------

#[test]
fn ladder_descends_under_pressure_and_recovers_when_calm() {
    let arena = shared_arena();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 64;
    config.batch = 2;
    config.ladder.high_water = 8;
    config.ladder.low_water = 2;
    config.ladder.descend_after = 2;
    config.ladder.ascend_after = 3;
    let mut sim = ServiceSim::new(Arc::clone(&arena), config).unwrap();

    let key = FlowKey(0xAAAA);
    let payload = flow_payload(7, 40 * 97, &[]);
    let segs = segments(&payload, 97);
    for (i, (seq, bytes)) in segs.iter().enumerate() {
        sim.offer(key, *seq, bytes, i as u64 + 1);
    }

    // Drain two packets per step, recording the tier trajectory.
    let mut trajectory = vec![sim.worker_tier(0)];
    while sim.stats().workers.packets < 40 {
        sim.step();
        trajectory.push(sim.worker_tier(0));
    }
    assert!(trajectory.contains(&FidelityTier::TwoStage));
    assert!(trajectory.contains(&FidelityTier::FlagOnly));
    let mid = sim.stats();
    assert_eq!(mid.workers.degrades, 2, "Exact→TwoStage→FlagOnly exactly");

    // Idle steps are calm observations: the worker must climb back.
    for _ in 0..8 {
        sim.step();
    }
    assert_eq!(sim.worker_tier(0), FidelityTier::Exact);
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.workers.recoveries, 2, "FlagOnly→TwoStage→Exact exactly");
    // Bytes were scanned at all three tiers, and the attribution sums.
    assert!(s.workers.tier_bytes.iter().all(|&b| b > 0), "{:?}", s.workers.tier_bytes);
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);
}

// ---------------------------------------------------------------------------
// 4. Flag-only fidelity: reported matches stay true, missed windowed
//    occurrences are counted as suspects.
// ---------------------------------------------------------------------------

#[test]
fn flag_only_tier_reports_only_true_matches_and_counts_suspects() {
    let arena = shared_arena();
    let patterns = pattern_strings();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 64;
    config.batch = 2;
    config.ladder.high_water = 4;
    config.ladder.low_water = 1;
    config.ladder.descend_after = 1;
    config.ladder.ascend_after = 50;
    let mut sim = ServiceSim::new(Arc::clone(&arena), config).unwrap();

    let key = FlowKey(0xBEEF);
    // Infected traffic: a planted occurrence in every late segment.
    let plants: Vec<(usize, &str)> = (8..20)
        .map(|i| (i * 97 + 20, "alpha-family-09-signature"))
        .collect();
    let payload = flow_payload(11, 20 * 97, &plants);
    for (i, (seq, bytes)) in segments(&payload, 97).iter().enumerate() {
        sim.offer(key, *seq, bytes, i as u64 + 1);
    }
    let report = sim.finish();
    let s = report.stats;
    assert!(s.workers.tier_bytes[2] > 0, "FlagOnly tier never engaged");
    assert!(
        s.workers.suspect_flags > 0,
        "unverified windowed flags must be counted"
    );
    let got = by_flow(&report.matches, key);
    let expect = reference(&arena, &payload);
    for m in &got {
        assert_true_occurrence(&patterns, &payload, m);
    }
    assert!(
        got.len() < expect.len(),
        "flag-only must miss some windowed occurrences here ({} vs {})",
        got.len(),
        expect.len()
    );
}

// ---------------------------------------------------------------------------
// 5. Hot-swap: in-band, rollback on failure, cold-build equivalence.
// ---------------------------------------------------------------------------

#[test]
fn hot_swap_is_in_band_and_match_equivalent_to_cold_build() {
    let arena = shared_arena();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 512;
    let mut sim = ServiceSim::new(Arc::clone(&arena), config).unwrap();

    // Generation 2 adds a pattern generation 1 does not know.
    let mut patterns2 = pattern_strings();
    patterns2.push("gamma-rollout-signature".to_string());
    let set2 = PatternSet::new(&patterns2).unwrap();

    let key = FlowKey(0xC0DE);
    // Pre-swap region plants the *new* pattern (must NOT match: those
    // bytes are scanned by generation 1) and an old one (must match).
    let pre = flow_payload(
        21,
        6 * 97,
        &[
            (30, "gamma-rollout-signature"),
            (200, "beta-family-04-marker"),
        ],
    );
    // Post-swap region plants both (both must match).
    let post = flow_payload(
        22,
        6 * 97,
        &[
            (40, "gamma-rollout-signature"),
            (300, "alpha-family-06-signature"),
        ],
    );

    let mut time = 0u64;
    for (seq, bytes) in segments(&pre, 97) {
        time += 1;
        sim.offer(key, seq, &bytes, time);
    }
    // No pump: the swap must land in-band *behind* the queued pre
    // segments and still only affect post bytes.
    let generation = sim.hot_swap(&set2, &two_stage_config()).unwrap();
    assert_eq!(generation, 2);
    for (seq, bytes) in segments(&post, 97) {
        time += 1;
        sim.offer(key, seq + pre.len() as u64, &bytes, time);
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.swaps, 1);
    assert_eq!(s.failed_swaps, 0);
    assert_eq!(s.workers.swaps, 1, "one worker installed one generation");
    assert!(s.workers.state_rebuilds >= 1, "the live flow must rebuild");
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);

    let got = by_flow(&report.matches, key);
    // In-band: no gamma match may end inside the pre region.
    let gamma = patterns2.len() - 1;
    assert!(
        got.iter()
            .all(|m| m.pattern.index() != gamma || m.end > pre.len()),
        "generation 2 leaked into pre-swap bytes: {got:?}"
    );
    // Pre-region matches equal a generation-1 cold build over pre.
    let pre_expect = reference(&arena, &pre);
    let pre_got: Vec<Match> = got
        .iter()
        .copied()
        .filter(|m| m.end <= pre.len())
        .collect();
    assert_eq!(pre_got, pre_expect);
    // Post-region matches equal a generation-2 cold build started at
    // the swap boundary (boundary-local loss only).
    let arena2 = RulesetArena::build(&set2, &two_stage_config(), 2).unwrap();
    let mut state = arena2.exact().flow_state();
    state.reset_at(pre.len() as u64);
    let mut scratch = arena2.exact().scratch();
    let mut post_expect = Vec::new();
    arena2
        .exact()
        .scan_chunk_into(&mut state, &post, &mut scratch, &mut post_expect);
    let post_got: Vec<Match> = got
        .iter()
        .copied()
        .filter(|m| m.end > pre.len())
        .collect();
    assert_eq!(post_got, post_expect);
}

#[test]
fn failed_swap_rolls_back_and_keeps_matching() {
    let arena = shared_arena();
    let patterns = pattern_strings();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 512;
    let plan = FaultPlan::new(vec![(0, FaultKind::BuildFailure)]);
    let mut sim = ServiceSim::with_faults(Arc::clone(&arena), config, plan).unwrap();

    let key = FlowKey(0xD00D);
    let payload = flow_payload(31, 4 * 97, &[(150, "beta-family-01-marker")]);
    let segs = segments(&payload, 97);
    // First offer fires the armed BuildFailure.
    sim.offer(key, segs[0].0, &segs[0].1, 1);
    let set = PatternSet::new(pattern_strings()).unwrap();
    assert!(
        sim.hot_swap(&set, &two_stage_config()).is_err(),
        "the armed fault must fail this build"
    );
    for (i, (seq, bytes)) in segs.iter().enumerate().skip(1) {
        sim.offer(key, *seq, bytes, i as u64 + 1);
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.failed_swaps, 1);
    assert_eq!(s.swaps, 0);
    assert_eq!(s.workers.swaps, 0, "no generation may reach a worker");
    let got = by_flow(&report.matches, key);
    assert!(
        got.iter()
            .any(|m| patterns[m.pattern.index()] == "beta-family-01-marker"),
        "rolled-back service must keep matching the old ruleset"
    );
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);
}

#[test]
fn slow_worker_stretches_swap_drain_but_generation_tags_stay_correct() {
    let arena = shared_arena();
    let mut config = ServiceConfig::with_workers(2);
    config.queue_cap = 512;

    let key = FlowKey(0xBEEF);
    let slow = ServiceSim::new(Arc::clone(&arena), config)
        .unwrap()
        .worker_of(key);
    let stall = 9u32;
    let plan = FaultPlan::new(vec![(0, FaultKind::SlowWorker(slow, stall))]);
    let mut sim = ServiceSim::with_faults(Arc::clone(&arena), config, plan).unwrap();

    let mut patterns2 = pattern_strings();
    patterns2.push("gamma-rollout-signature".to_string());
    let set2 = PatternSet::new(&patterns2).unwrap();

    let pre = flow_payload(
        41,
        3 * 97,
        &[
            (30, "gamma-rollout-signature"),
            (150, "beta-family-02-marker"),
        ],
    );
    let post = flow_payload(42, 3 * 97, &[(40, "gamma-rollout-signature")]);

    let mut time = 0u64;
    for (seq, bytes) in segments(&pre, 97) {
        time += 1;
        // The first offer fires the armed stall on the flow's worker.
        sim.offer(key, seq, &bytes, time);
    }
    let generation = sim.hot_swap(&set2, &two_stage_config()).unwrap();
    assert_eq!(sim.workers_at_generation(generation), 0);

    // The idle worker installs the in-band swap on its first step; the
    // stalled worker stretches the drain past its whole stall window.
    let mut steps = 0u32;
    while sim.workers_at_generation(generation) < 2 {
        sim.step();
        steps += 1;
        if steps == 1 {
            assert_eq!(
                sim.workers_at_generation(generation),
                1,
                "the un-stalled worker must install immediately"
            );
        }
        assert!(steps < 1000, "swap drain never completed");
    }
    assert!(
        steps > stall,
        "a {stall}-step stall must stretch the drain ({steps} steps measured)"
    );

    for (seq, bytes) in segments(&post, 97) {
        time += 1;
        sim.offer(key, seq + pre.len() as u64, &bytes, time);
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.swaps, 1);
    assert_eq!(s.workers.swaps, 2, "both workers installed the generation");
    assert!(s.workers.state_rebuilds >= 1, "the live flow must rebuild");
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);

    // Generation tags: bytes queued before the swap are scanned by
    // generation 1 (no gamma), bytes after by generation 2 (gamma hits).
    let got = by_flow(&report.matches, key);
    let gamma = patterns2.len() - 1;
    assert!(
        got.iter()
            .all(|m| m.pattern.index() != gamma || m.end > pre.len()),
        "generation 2 leaked into pre-swap bytes despite the stall: {got:?}"
    );
    assert!(
        got.iter()
            .any(|m| m.pattern.index() == gamma && m.end > pre.len()),
        "post-swap gamma occurrence must be found by generation 2"
    );
    assert!(
        got.iter().any(
            |m| pattern_strings()[m.pattern.index()] == "beta-family-02-marker"
                && m.end <= pre.len()
        ),
        "pre-swap bytes must still be scanned by generation 1"
    );
}

// ---------------------------------------------------------------------------
// 6. Worker panic: isolation, restart, boundary-local resume.
// ---------------------------------------------------------------------------

#[test]
fn worker_panic_restarts_and_flows_resume_with_boundary_local_loss() {
    let arena = shared_arena();
    let patterns = pattern_strings();
    let mut config = ServiceConfig::with_workers(1);
    config.queue_cap = 512;
    // The panic fires between the 2nd and 3rd offered segments.
    let plan = FaultPlan::new(vec![(2, FaultKind::WorkerPanic(0))]);
    let mut sim = ServiceSim::with_faults(Arc::clone(&arena), config, plan).unwrap();

    let key = FlowKey(0xF00D);
    // One planted occurrence per segment, each fully inside it.
    let plants: Vec<(usize, &str)> = (0..6)
        .map(|i| (i * 97 + 30, "alpha-family-02-signature"))
        .collect();
    let payload = flow_payload(41, 6 * 97, &plants);
    for (i, (seq, bytes)) in segments(&payload, 97).iter().enumerate() {
        sim.offer(key, *seq, bytes, i as u64 + 1);
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.workers.panics, 1);
    assert_eq!(s.workers.restarts, 1);
    assert_eq!(
        s.scanned_bytes() + s.workers.panic_lost_bytes,
        s.admitted_bytes,
        "admitted bytes must be scanned or accounted to the fault"
    );
    // The never-readmitted gap surfaces as counted hole-skips, not
    // silence.
    assert!(s.reassembly.holes_skipped >= 1);

    let got = by_flow(&report.matches, key);
    for m in &got {
        assert_true_occurrence(&patterns, &payload, m);
    }
    // Every planted occurrence lies fully inside one segment — none
    // straddles the restart boundary — so all six must be found.
    for (at, pat) in &plants {
        let end = at + pat.len();
        assert!(
            got.iter().any(|m| m.end == end),
            "occurrence ending at {end} lost across the restart: {got:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// 7. Clock skew: accounting and matching are time-independent.
// ---------------------------------------------------------------------------

#[test]
fn clock_skew_does_not_perturb_matching_or_accounting() {
    let arena = shared_arena();
    let plan = FaultPlan::new(vec![
        (3, FaultKind::ClockSkew(-1_000)),
        (9, FaultKind::ClockSkew(5_000)),
        (15, FaultKind::ClockSkew(-10_000)),
    ]);
    let mut config = ServiceConfig::with_workers(2);
    config.queue_cap = 512;
    let mut sim = ServiceSim::with_faults(Arc::clone(&arena), config, plan).unwrap();

    let flows: Vec<(FlowKey, Vec<u8>)> = (0..3u64)
        .map(|i| {
            (
                FlowKey(0xE000 + i as u128),
                flow_payload(50 + i, 500, &[(123, "beta-family-09-marker")]),
            )
        })
        .collect();
    let mut time = 500u64;
    for (key, payload) in &flows {
        for (seq, bytes) in segments(payload, 97) {
            time += 7;
            sim.offer(*key, seq, &bytes, time);
        }
    }
    let report = sim.finish();
    let s = report.stats;
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);
    for (key, payload) in &flows {
        assert_eq!(
            by_flow(&report.matches, *key),
            reference(&arena, payload),
            "skewed clocks must not change scan results"
        );
    }
}

// ---------------------------------------------------------------------------
// 8. The threaded runtime agrees with the simulator on a clean run.
// ---------------------------------------------------------------------------

#[test]
fn threaded_service_is_match_equivalent_and_measures_latency() {
    let arena = shared_arena();
    let mut config = ServiceConfig::with_workers(2);
    config.queue_cap = 4096;
    let mut service = Service::start(Arc::clone(&arena), config).unwrap();

    let flows: Vec<(FlowKey, Vec<u8>)> = (0..4u64)
        .map(|i| {
            (
                FlowKey(0x7000 + i as u128),
                flow_payload(
                    60 + i,
                    600,
                    &[(100, "alpha-family-08-signature"), (400, "beta-family-03-marker")],
                ),
            )
        })
        .collect();
    let mut admitted = 0u64;
    let mut time = 0u64;
    for (key, payload) in &flows {
        for (seq, bytes) in segments(payload, 97) {
            time += 1;
            if service.offer(*key, seq, &bytes, time) {
                admitted += 1;
            }
        }
    }
    let report = service.shutdown();
    let s = report.stats;
    assert_eq!(s.admitted_packets, admitted);
    assert_eq!(s.scanned_bytes(), s.admitted_bytes);
    assert_eq!(report.latency.count(), admitted, "every packet is stamped");
    assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.50));
    for (key, payload) in &flows {
        assert_eq!(by_flow(&report.matches, *key), reference(&arena, payload));
    }
}

// ---------------------------------------------------------------------------
// 9. Property: any seeded fault plan preserves the robustness contract.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_seeded_fault_plan_preserves_the_contract(seed in 0u64..1u64 << 48) {
        let arena = shared_arena();
        let patterns = pattern_strings();
        let mut config = ServiceConfig::with_workers(2);
        config.queue_cap = 16;
        config.batch = 4;
        config.shed.resume_below = 4;
        config.ladder.high_water = 8;
        config.ladder.low_water = 2;
        config.ladder.descend_after = 2;
        config.ladder.ascend_after = 4;
        let plan = FaultPlan::from_seed(seed, 6, 80, 2);
        let mut sim = ServiceSim::with_faults(Arc::clone(&arena), config, plan).unwrap();

        let flows: Vec<(FlowKey, Vec<u8>)> = (0..8u64)
            .map(|i| {
                let plants: Vec<(usize, &str)> = if i % 2 == 0 {
                    vec![(200 + 13 * i as usize, "alpha-family-04-signature")]
                } else {
                    vec![]
                };
                (
                    FlowKey(seed as u128 ^ (0x1_0000 + i as u128)),
                    flow_payload(seed ^ i, 10 * 120, &plants),
                )
            })
            .collect();
        let segmented: Vec<Vec<(u64, Vec<u8>)>> =
            flows.iter().map(|(_, p)| segments(p, 120)).collect();

        let mut time = 0u64;
        let mut offered = 0u64;
        let mut swapped = false;
        for r in 0..10 {
            for (f, segs) in segmented.iter().enumerate() {
                let (seq, bytes) = &segs[r];
                time += 3;
                sim.offer(flows[f].0, *seq, bytes, time);
                offered += 1;
                if offered.is_multiple_of(4) {
                    sim.step();
                }
                if offered == 40 && !swapped {
                    swapped = true;
                    // Same ruleset, next generation; an armed
                    // BuildFailure fault may legitimately fail it.
                    let set = PatternSet::new(pattern_strings()).unwrap();
                    let _ = sim.hot_swap(&set, &two_stage_config());
                }
            }
        }
        let report = sim.finish();
        let s = report.stats;

        // Shed accounting is exact.
        prop_assert_eq!(s.offered_packets, s.admitted_packets + s.shed_packets);
        prop_assert_eq!(s.offered_bytes, s.admitted_bytes + s.shed_bytes);
        // Every admitted byte was scanned at a declared tier or
        // accounted to a counted fault.
        prop_assert_eq!(
            s.scanned_bytes() + s.workers.panic_lost_bytes,
            s.admitted_bytes
        );
        // Event counters are exact.
        prop_assert_eq!(s.workers.resyncs, s.resumed_flows);
        prop_assert_eq!(s.workers.restarts, s.workers.panics);
        prop_assert_eq!(s.swaps + s.failed_swaps, 1);
        prop_assert_eq!(s.workers.swaps, s.swaps * 2);
        // Bounded state.
        prop_assert!(s.flows_resident <= 2 * 4096);
        // Nothing invented: every reported match is a true occurrence
        // of its flow's actual bytes.
        for (key, payload) in &flows {
            for m in by_flow(&report.matches, *key) {
                let pat = patterns[m.pattern.index()].as_bytes();
                let end = m.end;
                prop_assert!(end >= pat.len() && end <= payload.len());
                prop_assert_eq!(&payload[end - pat.len()..end], pat);
            }
        }
    }
}
