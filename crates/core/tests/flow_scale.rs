//! Flow-table behaviour at realistic scale: 1M+ distinct keys.
//!
//! The unit suite in `flow.rs` exercises correctness on toy tables;
//! these tests pin down the properties that only show up under
//! population pressure — occupancy bounds, eviction accounting,
//! set-associative collision quality, and honesty of the
//! `bytes_held` gauge while flows churn through eviction.

use dpi_core::{
    FlowKey, FlowLookup, FlowSegment, FlowState, FlowTable, ReassemblyConfig, StreamFlow,
};

/// Minimal per-flow state: just the stream offset, no buffers. Keeps a
/// million-slot table cheap enough for a debug-profile test run.
#[derive(Clone, Default)]
struct Tiny {
    offset: u64,
}

impl FlowState for Tiny {
    fn reset(&mut self) {
        self.offset = 0;
    }

    fn reset_at(&mut self, offset: u64) {
        self.offset = offset;
    }
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn key(&mut self) -> FlowKey {
        FlowKey((self.next() as u128) << 64 | self.next() as u128)
    }
}

const MILLION: usize = 1 << 20;

#[test]
fn million_slot_table_bounds_occupancy_and_accounts_every_eviction() {
    let mut table = FlowTable::with_ways(MILLION, 8, Tiny::default());
    let mut rng = SplitMix(0xA5A5_0001);
    let overload = MILLION + MILLION / 5; // 1.2M distinct flows
    for i in 0..overload {
        let (state, outcome) = table.touch_at(rng.key(), i as u64);
        state.offset = i as u64;
        assert!(
            !matches!(outcome, FlowLookup::Hit),
            "distinct keys must all miss"
        );
    }
    let stats = table.stats();
    assert!(table.len() <= MILLION, "occupancy may never exceed capacity");
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, overload as u64);
    // Conservation: every miss either filled an empty slot (resident at
    // the end) or displaced a resident flow (a counted eviction).
    assert_eq!(
        stats.evictions + stats.idle_evictions,
        overload as u64 - table.len() as u64,
        "misses minus residents must equal counted evictions"
    );
    // At 1.2x overload the table must actually be under pressure.
    assert!(stats.evictions > 0);
}

#[test]
fn half_loaded_million_slot_table_keeps_working_set_resident() {
    // 2^20 slots, 8-way: 2^17 sets. At load factor 0.5 the per-set
    // population is ~Poisson(4). A set dealt more than 8 keys loses
    // *all* of them on an in-order second pass (classic LRU cascade:
    // each miss evicts the key about to be touched), so the expected
    // hit rate is 1 - E[N; N>8]/4 ~= 0.949 — not the ~0.992 a naive
    // overflow count would suggest. Assert against the cascade-aware
    // bound.
    let mut table = FlowTable::with_ways(MILLION, 8, Tiny::default());
    let working_set = MILLION / 2;
    let keys: Vec<FlowKey> = {
        let mut rng = SplitMix(0xA5A5_0002);
        (0..working_set).map(|_| rng.key()).collect()
    };
    let mut now = 0u64;
    for key in &keys {
        now += 1;
        table.touch_at(*key, now);
    }
    let first = table.stats();
    assert_eq!(first.misses, working_set as u64);

    for key in &keys {
        now += 1;
        table.touch_at(*key, now);
    }
    let second = table.stats();
    let hits = second.hits - first.hits;
    let hit_rate = hits as f64 / working_set as f64;
    assert!(
        hit_rate >= 0.93,
        "second-pass hit rate {hit_rate:.4} too low for a half-loaded table"
    );
    // LRU within the set: the keys lost are exactly the extra misses.
    assert_eq!(
        second.misses - first.misses,
        working_set as u64 - hits,
        "every non-hit on the second pass must be a counted miss"
    );
}

#[test]
fn bytes_held_gauge_stays_honest_across_mass_eviction_and_flush() {
    // Small table, many flows, every flow parks an out-of-order segment
    // in its reassembler. Eviction churn must keep the global gauge
    // equal to the sum of per-flow buffers at every checkpoint.
    let capacity = 1 << 14;
    let config = ReassemblyConfig::default();
    let template = StreamFlow::new(config, Tiny::default());
    let mut table: FlowTable<StreamFlow<Tiny>> = FlowTable::with_ways(capacity, 4, template);

    let mut rng = SplitMix(0xA5A5_0003);
    let flows = 3 * capacity; // forces ~2/3 of flows through eviction
    let chunk = [0xABu8; 48];
    let mut scanned = 0u64;
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut keys = Vec::with_capacity(flows);
    for i in 0..flows {
        let key = rng.key();
        keys.push(key);
        now += 1;
        // seq 64 with nothing before it: buffers 48 bytes out of order.
        table.ingest_segment_at(
            FlowSegment {
                key,
                seq: 64,
                payload: &chunk,
            },
            now,
            false,
            |_state, delivered: &[u8], _out| scanned += delivered.len() as u64,
            &mut out,
        );
        if i % 4096 == 0 {
            let stats = table.stats();
            assert_eq!(
                stats.reassembly.bytes_held,
                table.buffered_bytes() as u64,
                "gauge diverged from per-flow buffers at flow {i}"
            );
        }
    }
    let stats = table.stats();
    assert!(stats.evictions > 0, "the table must have churned");
    assert_eq!(stats.reassembly.bytes_held, table.buffered_bytes() as u64);
    assert_eq!(
        stats.reassembly.bytes_held,
        table.len() as u64 * chunk.len() as u64,
        "every resident flow holds exactly one parked segment"
    );
    assert_eq!(scanned, 0, "nothing was contiguous yet");

    // Fill the hole for the most recently touched half of the keys.
    // Keys still resident deliver head + parked bytes; keys that were
    // already evicted start a fresh flow and deliver just the head —
    // the `FlowLookup` outcome tells the two apart exactly.
    let mut filled = 0u64;
    let mut fresh = 0u64;
    for (i, key) in keys.iter().rev().take(capacity / 2).enumerate() {
        now += 1;
        let head = [0xCDu8; 64];
        let outcome = table.ingest_segment_at(
            FlowSegment {
                key: *key,
                seq: 0,
                payload: &head,
            },
            now,
            false,
            |_state, delivered: &[u8], _out| scanned += delivered.len() as u64,
            &mut out,
        );
        match outcome {
            FlowLookup::Hit => filled += 1,
            _ => fresh += 1,
        }
        if i % 1024 == 0 {
            assert_eq!(
                table.stats().reassembly.bytes_held,
                table.buffered_bytes() as u64
            );
        }
    }
    assert!(filled > 0, "recent flows must still be resident");
    assert_eq!(
        scanned,
        filled * (64 + chunk.len() as u64) + fresh * 64,
        "each filled hole delivers head + parked bytes; fresh flows just the head"
    );

    // Flush the remainder: buffers empty, gauge reads zero, and all
    // parked bytes reach the scanner with counted hole-skips.
    let parked = table.buffered_bytes() as u64;
    let holes_before = table.stats().reassembly.holes_skipped;
    table.flush_flows(
        |_state, delivered: &[u8], _out| scanned += delivered.len() as u64,
        &mut out,
    );
    let stats = table.stats();
    assert_eq!(table.buffered_bytes(), 0);
    assert_eq!(stats.reassembly.bytes_held, 0, "gauge must read empty");
    assert!(
        stats.reassembly.holes_skipped > holes_before,
        "flush crosses the unfilled holes explicitly"
    );
    assert_eq!(
        scanned,
        filled * (64 + chunk.len() as u64) + fresh * 64 + parked,
        "flush must deliver every parked byte"
    );
}
